"""The Raincore Distributed Session Service node — paper §2.

:class:`RaincoreNode` is the per-node protocol engine.  It owns the token
state machine (HUNGRY/EATING/STARVING, paper §2.2) and composes the
sub-protocols:

* :class:`~repro.core.multicast.MulticastService` — reliable atomic
  multicast with agreed/safe ordering (§2.6);
* :class:`~repro.core.mutex.MutexService` — token-based mutual exclusion
  (§2.7);
* :class:`~repro.core.recovery.RecoveryProtocol` — the 911 token-recovery
  and join protocol (§2.3);
* :class:`~repro.core.merge.MergeProtocol` — split-brain discovery and
  group merge (§2.4);
* :class:`~repro.core.resources.ResourceMonitor` — critical-resource
  self-shutdown (§2.4).

Token acceptance guard
----------------------
Two layers, checked in order:

1. **Lineage continuity.**  Every node remembers the lineage id (``gen``)
   of the last token it accepted.  A non-TBM token is only *ours* if it
   continues that lineage — same ``gen``, or our binding appears in the
   token's bounded :attr:`~repro.core.token.Token.ancestry` chain (a 911
   regeneration or a merge minted a descendant).  Any other token belongs
   to a different live group that merely believes we are a member — the
   signature of a 911 regeneration racing the token it presumed lost.
   Processing both streams would interleave their agreed orders, so the
   foreign token is **diverted**: we remove ourselves from its ring and
   forward it to its next member.  Both forks then partition cleanly into
   disjoint groups, and the BODYODOR/TBM merge machinery (plus the data
   layer's resync ladder) reconciles them.
2. **Sequence freshness.**  A same-lineage token is ignored unless its
   sequence number is strictly greater than the last one seen.  Together
   with the rule that every send increments the sequence number, this
   makes duplicate tokens (created by an ack lost on an otherwise-
   successful forward, i.e. a failure-detector false alarm) die at the
   first node that already saw the newer branch — the mechanism behind
   the paper's token-uniqueness argument.

Task-switch accounting convention (paper §1, §4.1)
--------------------------------------------------
One task switch is charged per wakeup of the group-communication task: every
received session-layer message and every GC timer expiry.  The token *hold*
is not charged separately — the arrival wakeup covers the whole
process-hold-forward sequence, matching the paper's count of **L** task
switches per second for a token doing L roundtrips per second.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.config import RaincoreConfig
from repro.core.events import SessionListener, ViewChange
from repro.core.merge import MergeProtocol
from repro.core.multicast import MulticastService
from repro.core.mutex import MutexService
from repro.core.recovery import RecoveryProtocol
from repro.core.resources import ResourceMonitor
from repro.core.states import VALID_TRANSITIONS, NodeState
from repro.core.token import Ordering, Token
from repro.core.opengroup import OpenGroupAck, OpenGroupMessage
from repro.core.wire import BodyOdor, NineOneOne, NineOneOneReply
from repro.net.datagram import DatagramNetwork
from repro.net.eventloop import EventLoop, TimerHandle
from repro.transport.reliable import ReliableUnicast

__all__ = ["RaincoreNode"]


class RaincoreNode:
    """One member (or prospective member) of a Raincore group.

    Typical use::

        node = RaincoreNode("A", loop, network)
        node.start_new_group()          # first node bootstraps the group
        ...
        other = RaincoreNode("B", loop, network)
        other.start_joining(["A"])      # everyone else joins via a 911

        node.multicast(b"state update")            # agreed ordering
        node.multicast(b"commit", ordering=Ordering.SAFE)
        node.run_exclusive(lambda: ...)            # master-lock section
    """

    def __init__(
        self,
        node_id: str,
        loop: EventLoop,
        network: DatagramNetwork,
        config: RaincoreConfig | None = None,
        listener: SessionListener | None = None,
    ) -> None:
        self.node_id = node_id
        self.loop = loop
        self.network = network
        self.config = config if config is not None else RaincoreConfig()
        self.listener = listener if listener is not None else SessionListener()
        self.stats = network.stats.for_node(node_id)
        # Optional probe bus (repro.obs); None keeps every hot path at one
        # attribute load + None test.  Wired by ClusterHarness.enable_probes.
        self.probe = None
        # Per-node token-lineage counter for gen ids ("A.1", "A.2", ...).
        self._gen_seq = 0

        self.transport = ReliableUnicast(node_id, loop, network, self.config.transport)
        self.transport.set_receiver(self._receive)

        self.multicast_service = MulticastService(self)
        self.mutex = MutexService(self)
        self.recovery = RecoveryProtocol(self)
        self.merge = MergeProtocol(self)
        self.monitor = ResourceMonitor(self)

        self.state: NodeState = NodeState.DOWN
        self._live_token: Token | None = None
        self._local_copy: Token | None = None
        self._last_seen_seq: int = -1
        # Lineage binding: gen of the last accepted token (None until the
        # first acceptance).  See "Token acceptance guard" above.
        self._lineage: str | None = None
        self._members: tuple[str, ...] = ()
        self._announced_view: tuple[str, ...] | None = None
        self._hungry_timer: TimerHandle | None = None
        self._forward_timer: TimerHandle | None = None
        self._epoch = 0  # bumped on crash/shutdown to invalidate stale timers
        self._leaving = False
        self._drain_before_leave = False
        self._open_group_seen: set[tuple[str, int]] = set()
        self.shutdown_reason: str | None = None
        # Peers quarantined from the view (peer id -> structured reason).
        # Quarantined peers are evicted on the next token visit and their
        # 911 joins / BODYODOR merges are ignored until the backoff lifts
        # (bounded-state resync degradation ladder, docs/RESYNC.md).
        self.quarantined: dict[str, str] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def members(self) -> tuple[str, ...]:
        """Last known group membership (ring order)."""
        return self._members

    @property
    def is_member(self) -> bool:
        return self.node_id in self._members and self.state not in (
            NodeState.DOWN,
            NodeState.JOINING,
        )

    @property
    def is_eating(self) -> bool:
        return self.state is NodeState.EATING

    @property
    def group_id(self) -> str:
        """Lowest member id — the group identity used by the merge protocol."""
        if not self._members:
            return self.node_id
        return min(self._members)

    @property
    def local_copy(self) -> Token | None:
        """This node's local copy of the token (made at each forward)."""
        if self._live_token is not None:
            return self._live_token
        return self._local_copy

    @property
    def local_copy_seq(self) -> int:
        copy = self.local_copy
        return copy.seq if copy is not None else -1

    @property
    def has_token(self) -> bool:
        return self._live_token is not None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start_new_group(self) -> None:
        """Bootstrap a new singleton group with this node as only member."""
        if self.state is not NodeState.DOWN:
            raise RuntimeError(f"{self.node_id}: already started ({self.state})")
        self._reset_session_state()
        self.transport.start()
        self.merge.start()
        self.monitor.start()
        self._transition(NodeState.JOINING)
        self._bootstrap_token()

    def start_joining(self, contacts: list[str]) -> None:
        """Join an existing group by sending a 911 to one of ``contacts``."""
        if self.state is not NodeState.DOWN:
            raise RuntimeError(f"{self.node_id}: already started ({self.state})")
        self._reset_session_state()
        self.transport.start()
        self.merge.start()
        self.monitor.start()
        self._transition(NodeState.JOINING)
        self.recovery.start_join(contacts)

    def _reset_session_state(self) -> None:
        self._live_token = None
        self._local_copy = None
        self._last_seen_seq = -1
        self._lineage = None
        self._members = ()
        self._announced_view = None
        self._leaving = False
        self._drain_before_leave = False
        self.shutdown_reason = None
        # A restart is a new incarnation: drop work queued by the old one —
        # including grudges (lift timers for the old entries become no-ops).
        self.quarantined.clear()
        self.multicast_service.reset()
        self.mutex._queue.clear()

    def _next_gen(self) -> str:
        """Mint the next token-lineage id created by this node.

        Deterministic by construction (node id + local counter), so it is
        safe to carry on the wire and in exported probe streams.
        """
        self._gen_seq += 1
        return f"{self.node_id}.{self._gen_seq}"

    def _gc_wakeup(self) -> None:
        """Charge a GC task wakeup and probe it when it is a fresh batch."""
        if self.stats.gc_wakeup(self.loop.now):
            probe = self.probe
            if probe is not None:
                probe.emit(self.node_id, "core.wakeup")

    def _bootstrap_token(self) -> None:
        """Create the group's first token (also the fresh-bootstrap 911 path)."""
        token = Token(
            seq=0, membership=(self.node_id,), view_id=0, gen=self._next_gen()
        )
        probe = self.probe
        if probe is not None:
            probe.emit(self.node_id, "token.bootstrap", token.gen)
        self._accept_token(token)

    def shutdown(self, reason: str = "shutdown") -> None:
        """Graceful-ish local stop: cease all protocol activity.

        Peers detect us through failure-on-delivery on the next token pass.
        Used for critical-resource self-shutdown (paper §2.4) and by fault
        injection.
        """
        if self.state is NodeState.DOWN:
            return
        self.shutdown_reason = reason
        self._teardown()
        probe = self.probe
        if probe is not None:
            probe.emit(self.node_id, "node.shutdown", reason)
        self.listener.on_shutdown(reason)

    def crash(self) -> None:
        """Fail-stop without any notification — fault injection."""
        if self.state is NodeState.DOWN:
            return
        self.shutdown_reason = "crash"
        self._teardown()

    def _teardown(self) -> None:
        self._epoch += 1
        self.transport.stop()
        self.merge.stop()
        self.monitor.stop()
        self.recovery.cancel_timers()
        self._cancel_timer("_hungry_timer")
        self._cancel_timer("_forward_timer")
        self._live_token = None
        self._transition(NodeState.DOWN)

    def leave(self, drain: bool = False) -> None:
        """Voluntarily leave the group: on the next token visit, remove
        ourselves from the ring, forward the token, and shut down.

        With ``drain=True`` departure waits until every queued multicast
        has been attached to the token (a graceful flush): once attached,
        messages complete delivery on their own because the pending sets
        never include the departed originator.
        """
        self._leaving = True
        self._drain_before_leave = drain
        if self.is_eating:
            if drain and self.multicast_service.outbox_depth() > 0:
                return  # the in-progress visit (or the next) will flush
            self._depart_with_token()

    # ------------------------------------------------------------------
    # public service API
    # ------------------------------------------------------------------
    def multicast(
        self,
        payload: object,
        size: int | None = None,
        ordering: Ordering = Ordering.AGREED,
    ) -> tuple[str, int]:
        """Reliably multicast ``payload`` to the group (paper §2.6).

        Returns the multicast id ``(origin, msg_no)``.  The message rides
        the token starting from this node's next visit.
        """
        if self.state is NodeState.DOWN:
            raise RuntimeError(f"{self.node_id}: node is down")
        return self.multicast_service.multicast(payload, size, ordering)

    def run_exclusive(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` under the group master-lock (paper §2.7)."""
        if self.state is NodeState.DOWN:
            raise RuntimeError(f"{self.node_id}: node is down")
        self.mutex.run_exclusive(fn)

    def set_eligible(self, node_ids: Iterable[str]) -> None:
        """Configure the Eligible Membership for discovery (paper §2.4)."""
        self.merge.set_eligible(node_ids)

    def quarantine_peer(self, peer: str, reason: str) -> None:
        """Quarantine ``peer`` from the view with a structured ``reason``.

        Called by the resync degradation ladder when a peer repeatedly
        fails state transfer: the peer is removed from the ring on this
        node's next token visit, and its 911 joins and BODYODOR merge
        beacons are ignored until ``resync_quarantine_backoff`` elapses.
        Quarantining beats the alternative — a peer that can never resync
        re-entering the view forever, stalling convergence and bloating
        every member's retransmit and catch-up state.
        """
        if peer == self.node_id or peer in self.quarantined:
            return
        self.quarantined[peer] = reason
        probe = self.probe
        if probe is not None:
            probe.emit(self.node_id, "resync.quarantine", peer, reason, True)
        self.loop.call_later(
            self.config.resync_quarantine_backoff, self._lift_quarantine, peer
        )

    def _lift_quarantine(self, peer: str) -> None:
        if self.quarantined.pop(peer, None) is None:
            return
        self._gc_wakeup()
        probe = self.probe
        if probe is not None:
            probe.emit(self.node_id, "resync.quarantine", peer, "", False)

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _transition(self, new: NodeState) -> None:
        old = self.state
        if old is new:
            return
        if new not in VALID_TRANSITIONS[old]:
            raise AssertionError(
                f"{self.node_id}: illegal transition {old.value} -> {new.value}"
            )
        self.state = new
        probe = self.probe
        if probe is not None:
            probe.emit(self.node_id, "node.state", old.value, new.value)
        self.listener.on_state_change(old, new)

    def _arm_hungry_timer(self, timeout: float | None = None) -> None:
        timer = self._hungry_timer
        if timer is not None:
            timer.cancel()
        self._hungry_timer = self.loop.call_later(
            timeout if timeout is not None else self.config.hungry_timeout,
            self._on_hungry_timeout,
            self._epoch,
        )

    def _cancel_timer(self, attr: str) -> None:
        timer = getattr(self, attr)
        if timer is not None:
            timer.cancel()
            setattr(self, attr, None)

    def _on_hungry_timeout(self, epoch: int) -> None:
        if epoch != self._epoch or self.state is not NodeState.HUNGRY:
            return
        self._gc_wakeup()
        self.recovery.on_hungry_timeout()

    # ------------------------------------------------------------------
    # receive dispatch
    # ------------------------------------------------------------------
    def _receive(self, src_node: str, payload: object) -> None:
        """Transport delivered a session-layer message: one GC wakeup."""
        if self.state is NodeState.DOWN:
            return
        self._gc_wakeup()
        if isinstance(payload, Token):
            self._accept_token(payload, from_node=src_node)
        elif isinstance(payload, NineOneOne):
            self.recovery.handle_911(payload)
        elif isinstance(payload, NineOneOneReply):
            self.recovery.handle_reply(payload)
        elif isinstance(payload, BodyOdor):
            self.merge.handle_bodyodor(payload)
        elif isinstance(payload, OpenGroupMessage):
            self._handle_open_group(payload)
        # Unknown payloads are dropped, as the session layer of a router
        # must tolerate garbage.

    def _handle_open_group(self, msg: OpenGroupMessage) -> None:
        """Open group communication (paper §2.6): an outside node asked us
        to forward its message to the whole group.

        Per-contact dedup makes a retried injection at *this* member
        idempotent; a client that fails over to a different contact after a
        lost acceptance gets at-least-once semantics (documented in
        :mod:`repro.core.opengroup`).
        """
        if not self.is_member:
            return  # no ack: the client will try another contact
        key = (msg.client, msg.client_msg_no)
        if key not in self._open_group_seen:
            self._open_group_seen.add(key)
            ordering = Ordering.SAFE if msg.safe else Ordering.AGREED
            self.multicast(msg.payload, size=msg.size, ordering=ordering)
        self.transport.send(msg.client, OpenGroupAck(self.node_id, msg.client_msg_no))

    # ------------------------------------------------------------------
    # token handling
    # ------------------------------------------------------------------
    def _accept_token(self, token: Token, from_node: str | None = None) -> None:
        if self.state is NodeState.DOWN:
            return
        if token.tbm and not token.has_member(self.node_id):
            # Defensive: a TBM token must name us; otherwise ignore.
            return
        if token.tbm:
            # A second TBM while one is held is dropped; the second
            # initiator's group starves and recovers via the 911 protocol.
            self.merge.handle_tbm(token)
            return
        lineage = self._lineage
        if (
            lineage is not None
            and self.state is not NodeState.JOINING
            and token.gen != lineage
            and lineage not in token.ancestry
        ):
            # Not a continuation of the lineage we follow: a concurrent
            # fork (911 regen racing the live token) or a straggler from a
            # dead one.  Either way, delivering from two token streams
            # would break agreed ordering — route it around ourselves
            # instead.  (A JOINING node has no stream to protect: it
            # accepts whichever group admits it.)
            self._divert_foreign_token(token, from_node)
            return
        if token.seq <= self._last_seen_seq:
            # Stale duplicate of our own lineage (healed false alarm).
            # The drop is deliberately SILENT: the stale branch of a false
            # alarm must die here.  (Tokens from *other* lineages never
            # reach this guard — the lineage check above diverts them.)
            probe = self.probe
            if probe is not None:
                probe.emit(
                    self.node_id,
                    "token.stale",
                    from_node if from_node is not None else "local",
                    token.gen,
                    token.seq,
                )
            return
        if not token.has_member(self.node_id):
            # We were removed while the token was in flight; we will starve
            # and rejoin via the 911 protocol (paper §2.3).
            return
        self._last_seen_seq = token.seq
        self._live_token = token
        self._lineage = token.gen
        probe = self.probe
        if probe is not None:
            probe.emit(
                self.node_id,
                "token.accept",
                from_node if from_node is not None else "local",
                token.gen,
                token.seq,
                len(token.messages),
            )
        self.recovery.cancel_timers()
        timer = self._hungry_timer
        if timer is not None:
            timer.cancel()
            self._hungry_timer = None
        self._transition(NodeState.EATING)

        if self.merge.holding_tbm:
            # Our own token has arrived while we hold a TBM token: merge
            # the two groups now (paper §2.4).
            self._live_token = self.merge.merge_with_own(token)
            self._last_seen_seq = self._live_token.seq
            self._lineage = self._live_token.gen

        if self._leaving:
            if (
                self._drain_before_leave
                and self.multicast_service.outbox_depth() > 0
            ):
                # Graceful drain: keep attaching (bounded per visit by the
                # batch/byte budgets) and leave once the outbox is empty.
                self._process_visit()
                return
            self._depart_with_token()
            return

        self._process_visit()

    def _divert_foreign_token(self, token: Token, from_node: str | None) -> None:
        """Route a foreign-lineage token around ourselves (see the module
        docstring's acceptance guard, layer 1).

        We are bound to a different live lineage, so we must not process —
        or silently swallow — this one.  If its ring names us, we remove
        ourselves (pruning us from its messages' pending sets, the same
        bookkeeping as a failure-detector removal) and pass it to our ring
        successor, so the foreign group keeps its token and simply shrinks
        by one.  A foreign token that does not name us is dropped; its
        group recovers through its own HUNGRY timeout and 911 round.
        """
        probe = self.probe
        if probe is not None:
            probe.emit(
                self.node_id,
                "token.foreign",
                from_node if from_node is not None else "local",
                token.gen,
                token.seq,
            )
        if not token.has_member(self.node_id):
            return
        successor = token.next_after(self.node_id)
        if successor == self.node_id:
            return  # their ring was only us: the fork dissolves here
        token.remove_member(self.node_id)
        token.seq += 1
        self.transport.send(successor, token)

    def _merge_now(self) -> None:
        """Called by the merge protocol when a TBM arrives while EATING."""
        if self._live_token is None:  # pragma: no cover - defensive
            return
        self._live_token = self.merge.merge_with_own(self._live_token)
        self._last_seen_seq = self._live_token.seq
        self._lineage = self._live_token.gen
        self._sync_membership(self._live_token)

    def _process_visit(self) -> None:
        """The full EATING pipeline for one token visit."""
        token = self._live_token
        assert token is not None
        self._sync_membership(token)
        self.recovery.on_token(token)  # apply queued joins
        self.multicast_service.on_token(token)
        self.mutex.on_token()
        self._sync_membership(token)  # joins may have changed the view
        # Hold the token for the hop interval, then forward (paper §2.2:
        # "passed at a regular time interval").  The hold belongs to the
        # arrival wakeup — no extra task switch is charged.
        timer = self._forward_timer
        if timer is not None:
            timer.cancel()
        self._forward_timer = self.loop.call_later(
            self.config.hop_interval, self._forward_token, self._epoch
        )

    def _sync_membership(self, token: Token) -> None:
        self._members = token.membership
        if self._announced_view != token.membership:
            self._announced_view = token.membership
            probe = self.probe
            if probe is not None:
                probe.emit(
                    self.node_id, "view.change", token.view_id, token.membership
                )
            self.listener.on_view_change(
                ViewChange(token.view_id, token.membership, self.loop.now)
            )

    def _forward_token(self, epoch: int) -> None:
        if epoch != self._epoch or self.state is not NodeState.EATING:
            return
        token = self._live_token
        if token is None:  # pragma: no cover - defensive
            return
        override = self.merge.maybe_initiate(token)
        if override is not None:
            self._sync_membership(token)  # merge target was added to ring
            target = override
        else:
            target = token.next_after(self.node_id)
        self._send_token_to(target)

    def _send_token_to(self, target: str) -> None:
        token = self._live_token
        assert token is not None
        if target == self.node_id:
            # Singleton ring: the token "circulates" on this node alone.
            token.seq += 1
            self._local_copy = token.snapshot()
            self._live_token = None
            self._transition(NodeState.HUNGRY)
            self._arm_hungry_timer()
            self.loop.call_later(0.0, self._accept_token, self._local_copy.snapshot())
            return
        token.seq += 1
        sent = token  # the object travels; our copy-on-write snapshot is
        # independent: the next holder clones any message before mutating it.
        self._local_copy = token.snapshot()
        self._live_token = None
        self._transition(NodeState.HUNGRY)
        self._arm_hungry_timer()
        seq = sent.seq
        probe = self.probe
        if probe is not None:
            # Forwarding the token *is* arming the failure detector: the
            # transport's failure-on-delivery on this send is what detects
            # a dead neighbour (paper §2.2).
            probe.emit(self.node_id, "fd.arm", target, seq)
        self.transport.send(
            target,
            sent,
            on_result=lambda ok, t=target, s=seq: self._on_forward_result(t, s, ok),
        )

    def _on_forward_result(self, target: str, seq: int, ok: bool) -> None:
        if ok or self.state is NodeState.DOWN:
            return
        probe = self.probe
        if self._last_seen_seq >= seq:
            # We have seen a newer token since; the ring moved on without
            # our help (e.g. the "failed" forward actually arrived).
            if probe is not None:
                probe.emit(self.node_id, "fd.false_alarm", target, seq)
            return
        # Failure-on-delivery: aggressive failure detection (paper §2.2).
        # Remove the dead neighbour and pass the token to the next healthy
        # node, resuming from our local copy of exactly what we sent.
        self._gc_wakeup()
        if probe is not None:
            probe.emit(self.node_id, "fd.fire", target, seq)
        copy = self._local_copy
        if copy is None:  # pragma: no cover - defensive
            return
        token = copy.snapshot()
        token.remove_member(target)
        # If the failed neighbour was a merge target, the merge is off.
        token.tbm = False
        if not token.has_member(self.node_id):  # pragma: no cover - defensive
            return
        # Re-accept our own repaired token: seq equals what we sent, which
        # passes the strictly-greater guard because _last_seen_seq still
        # holds the seq at which we *received* it.
        self._accept_token(token)

    def _depart_with_token(self) -> None:
        """Voluntary leave while EATING: hand the ring over and stop."""
        token = self._live_token
        assert token is not None
        successor = token.next_after(self.node_id)
        token.remove_member(self.node_id)
        if successor == self.node_id or not token.membership:
            # We were the last member; the group dissolves with us.
            self._teardown()
            return
        token.seq += 1
        self.transport.send(successor, token)
        self._live_token = None
        # Leave the epoch teardown to run after the send is queued.
        self._teardown()
