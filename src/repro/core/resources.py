"""Critical-resource monitoring — paper §2.4 (split-brain prevention) and
§3.2 (Rainwall health monitoring).

    "Another feature that Raincore offers is the ability to define critical
    resources for each of the member nodes.  A node will shut down itself
    when any of its critical resources becomes unavailable."

A resource is a named health check polled on a timer.  When a check fails,
the node shuts itself down (leaving the group), which both prevents
split-brain (configure a common upstream resource: only the sub-group that
still reaches it survives) and powers Rainwall's fail-away-from-sick-nodes
behaviour (monitor applications, NICs, remote links).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import RaincoreNode

__all__ = ["CriticalResource", "ResourceMonitor"]


@dataclass
class CriticalResource:
    """One named health check.

    ``check`` returns True while the resource is healthy.  ``required``
    consecutive failures trigger shutdown, so a single flaky probe does not
    kill the node.
    """

    name: str
    check: Callable[[], bool]
    poll_interval: float = 0.100
    required: int = 1
    _failures: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.required < 1:
            raise ValueError("required must be at least 1")


class ResourceMonitor:
    """Polls critical resources and shuts the node down on sustained failure."""

    def __init__(self, node: "RaincoreNode") -> None:
        self.node = node
        self._resources: dict[str, CriticalResource] = {}
        self._timers: dict[str, object] = {}
        self._running = False

    def add(self, resource: CriticalResource) -> None:
        """Register a resource; starts polling immediately if running."""
        if resource.name in self._resources:
            raise ValueError(f"duplicate resource {resource.name!r}")
        self._resources[resource.name] = resource
        if self._running:
            self._arm(resource)

    def remove(self, name: str) -> None:
        self._resources.pop(name, None)
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()

    def resources(self) -> list[str]:
        return list(self._resources)

    def start(self) -> None:
        self._running = True
        for resource in self._resources.values():
            self._arm(resource)

    def stop(self) -> None:
        self._running = False
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    def _arm(self, resource: CriticalResource) -> None:
        self._timers[resource.name] = self.node.loop.call_later(
            resource.poll_interval, self._poll, resource.name
        )

    def _poll(self, name: str) -> None:
        resource = self._resources.get(name)
        if resource is None or not self._running:
            return
        if resource.check():
            resource._failures = 0
            self._arm(resource)
            return
        resource._failures += 1
        if resource._failures >= resource.required:
            self.stop()
            self.node.shutdown(f"critical resource {name!r} unavailable")
        else:
            self._arm(resource)
