"""Performance-regression harness for the simulation substrate.

The protocol stack is exercised entirely in virtual time, but the repo also
cares about how fast the *simulator itself* runs: slow hot paths cap how
much virtual time the chaos campaigns and soak tests can afford.  This
module measures wall-clock throughput of the three hot paths the substrate
optimizes — the bare event loop, a loaded 8-node token ring, and the token
hop pipeline — and reports machine-readable rates for regression tracking.

.. note::
   This is the one module under ``src/`` allowed to read the wall clock
   (``time.perf_counter``): its entire purpose is measuring real elapsed
   time.  Protocol and simulation code must keep using virtual time only.

Metrics (all higher-is-better except ``wall_clock_per_sim_second``):

* ``event_loop_events_per_sec`` — callbacks dispatched per wall second by
  an :class:`~repro.net.eventloop.EventLoop` with no protocol on top.
* ``loaded_ring_events_per_sec`` — events per wall second for an 8-node
  Raincore ring circulating a token with 50 queued multicasts.
* ``token_hops_per_sec`` — token forwards per wall second in that ring.
* ``wall_clock_per_sim_second`` — wall seconds needed to simulate one
  virtual second of the loaded ring (lower is better).
* ``probe_overhead_ratio`` — wall-clock cost of running the same ring with
  the probe bus and flight recorder attached, relative to running it with
  probes disabled (lower is better; 1.0 means observability is free).  The
  probes-disabled cost itself is covered by ``loaded_ring_events_per_sec``:
  a disabled probe is one attribute load and a None test, so any
  measurable regression there would trip the existing rate gate.
* ``monitor_overhead_ratio`` — wall-clock cost of the same probed ring
  with the contract monitor evaluating the full paper rule set on top,
  relative to probes + recorder alone (lower is better; isolates what the
  *rules engine* adds over the instrumentation it rides on).
* ``resync_overhead_ratio`` — wall-clock cost of driving the reference
  ring through replicated SharedDict writes (segmented op log, hash
  chaining, acks and pruning — the whole docs/RESYNC.md bookkeeping)
  relative to plain multicasts of the same count (lower is better).
* ``prof_overhead_ratio`` — wall-clock cost of the reference ring with the
  hot-path profiler (:mod:`repro.obs.prof`) attached to the event loop,
  relative to running unprofiled (lower is better).  The profiler reads
  the wall clock twice per dispatched event, so this prices the whole
  ``repro prof`` attribution channel (docs/PROFILING.md).
* ``agg_overhead_ratio`` — wall-clock cost of the probed reference ring
  with a :class:`~repro.obs.agg.StreamAggregator` folding every probe
  into bounded per-node state, relative to probes + recorder alone
  (lower is better; isolates what *streaming aggregation* adds on top of
  the instrumentation it rides on).
* ``telemetry_overhead_ratio`` — wall-clock cost of the probed reference
  ring with a :class:`~repro.runtime.telemetry.TelemetryShipper`
  subscribed (restamp + JSON-frame every probe event, sink discarded),
  relative to probes + recorder alone (lower is better; prices what the
  raintap shipping plane adds per event before the socket,
  docs/TELEMETRY.md).

``repro bench`` (see :mod:`repro.cli`) runs the suite, writes a JSON
report, and can gate on a committed baseline with a relative tolerance.
"""

from __future__ import annotations

import json
import time
from typing import Any

__all__ = [
    "QUICK",
    "FULL",
    "SCALING_WORKLOAD",
    "bench_event_loop",
    "bench_loaded_ring",
    "bench_probe_overhead",
    "bench_monitor_overhead",
    "bench_resync_overhead",
    "bench_prof_overhead",
    "bench_agg_overhead",
    "bench_telemetry_overhead",
    "bench_shard_scaling",
    "run_suite",
    "write_report",
    "append_history",
    "compare",
]

#: Workload knobs: (bare-loop events, loaded-ring virtual seconds, repeats).
FULL = {"loop_events": 50_000, "ring_sim_seconds": 1.0, "repeats": 5, "scaling_sim_seconds": 4.0}
#: Reduced workload for CI smoke runs; same *rate* metrics, smaller sample.
QUICK = {"loop_events": 10_000, "ring_sim_seconds": 0.5, "repeats": 3, "scaling_sim_seconds": 1.5}

#: Multi-ring workload for the shard-scaling curve: 8 natural groups so
#: every shard count up to 8 has work.  The 20 ms trunk latency (= epoch
#: length) and the dense per-ring load keep per-epoch compute well above
#: the barrier cost — the regime the sharded engine is built for; shorter
#: lookaheads shift the bill toward synchronization on any machine.
SCALING_WORKLOAD = {
    "rings": 8,
    "ring_size": 6,
    "hop_interval": 0.001,
    "mcast_interval": 0.004,
    "trunk_latency": 0.02,
}

#: Metrics where smaller values are improvements.
_LOWER_IS_BETTER = {
    "wall_clock_per_sim_second",
    "probe_overhead_ratio",
    "monitor_overhead_ratio",
    "resync_overhead_ratio",
    "prof_overhead_ratio",
    "agg_overhead_ratio",
    "telemetry_overhead_ratio",
}


def bench_event_loop(n_events: int) -> float:
    """Dispatch ``n_events`` no-op callbacks; return events per wall second."""
    from repro.net.eventloop import EventLoop

    loop = EventLoop(seed=1)
    callback = lambda: None  # noqa: E731 - cheapest possible event body
    for i in range(n_events):
        loop.call_later(i * 1e-6, callback)
    t0 = time.perf_counter()
    loop.run_until_idle()
    t1 = time.perf_counter()
    return n_events / (t1 - t0)


def bench_loaded_ring(sim_seconds: float) -> tuple[float, float, float]:
    """Run the reference loaded ring; return (events/s, hops/s, wall per sim s).

    The workload mirrors ``benchmarks/bench_simulator.py``: 8 nodes, seed 2,
    a 5 ms hop interval, and 50 multicasts of 200 bytes queued up front, so
    numbers stay comparable across harnesses.
    """
    from repro.cluster.harness import RaincoreCluster
    from repro.core.config import RaincoreConfig

    cluster = RaincoreCluster(
        [f"n{i}" for i in range(8)],
        seed=2,
        config=RaincoreConfig.tuned(ring_size=8, hop_interval=0.005),
    )
    cluster.start_all()
    for i in range(50):
        cluster.node(f"n{i % 8}").multicast(f"m{i}", size=200)
    t0 = time.perf_counter()
    cluster.run(sim_seconds)
    t1 = time.perf_counter()
    wall = t1 - t0
    events = cluster.loop.events_processed
    hops = max(cluster.node(nid).local_copy_seq for nid in cluster.node_ids)
    return events / wall, hops / wall, wall / sim_seconds


def bench_probe_overhead(sim_seconds: float) -> float:
    """Instrumentation-overhead ratio of the loaded reference ring.

    Runs the :func:`bench_loaded_ring` workload twice — once as shipped
    (every probe point is a disabled ``if probe is not None`` check) and
    once with the probe bus enabled and a flight recorder subscribed —
    and returns ``enabled_wall / disabled_wall``.
    """
    from repro.cluster.harness import RaincoreCluster
    from repro.core.config import RaincoreConfig

    def one_run(probed: bool) -> float:
        cluster = RaincoreCluster(
            [f"n{i}" for i in range(8)],
            seed=2,
            config=RaincoreConfig.tuned(ring_size=8, hop_interval=0.005),
        )
        if probed:
            from repro.obs import FlightRecorder

            FlightRecorder(cluster.enable_probes())
        cluster.start_all()
        for i in range(50):
            cluster.node(f"n{i % 8}").multicast(f"m{i}", size=200)
        t0 = time.perf_counter()
        cluster.run(sim_seconds)
        t1 = time.perf_counter()
        return t1 - t0

    disabled = one_run(False)
    enabled = one_run(True)
    return enabled / disabled


def bench_monitor_overhead(sim_seconds: float) -> float:
    """Contract-monitor overhead ratio over the probed reference ring.

    Runs the probed :func:`bench_loaded_ring` workload (bus + flight
    recorder, the ``probe_overhead_ratio`` numerator) twice — with and
    without a :class:`~repro.obs.monitor.ContractMonitor` evaluating the
    full paper rule set — and returns ``monitored_wall / probed_wall``:
    what *watching* the contracts costs on top of emitting the probes.
    """
    from repro.cluster.harness import RaincoreCluster
    from repro.core.config import RaincoreConfig

    def one_run(monitored: bool) -> float:
        config = RaincoreConfig.tuned(ring_size=8, hop_interval=0.005)
        cluster = RaincoreCluster(
            [f"n{i}" for i in range(8)], seed=2, config=config
        )
        from repro.obs import ContractMonitor, FlightRecorder, paper_contract_rules

        bus = cluster.enable_probes()
        FlightRecorder(bus)
        monitor = None
        if monitored:
            monitor = ContractMonitor(bus, paper_contract_rules(config, 8))
        cluster.start_all()
        if monitor is not None:
            monitor.start()
        for i in range(50):
            cluster.node(f"n{i % 8}").multicast(f"m{i}", size=200)
        t0 = time.perf_counter()
        cluster.run(sim_seconds)
        t1 = time.perf_counter()
        return t1 - t0

    probed = one_run(False)
    monitored = one_run(True)
    return monitored / probed


def bench_resync_overhead(sim_seconds: float) -> float:
    """Bounded-resync bookkeeping overhead on the reference ring.

    Runs the :func:`bench_loaded_ring` workload twice — once with the 50
    messages as plain multicasts, once as replicated SharedDict writes
    (which ride the identical agreed-order path but additionally append
    to the hash-chained segmented log, multicast seal acks and prune on
    full acknowledgement) — and returns ``replicated_wall / plain_wall``.
    This prices the *entire* Data Service write path, so it is a coarse
    upper bound on what the resync layer alone costs.
    """
    from repro.cluster.harness import RaincoreCluster
    from repro.core.config import RaincoreConfig
    from repro.data import SharedDict

    def one_run(replicated: bool) -> float:
        cluster = RaincoreCluster(
            [f"n{i}" for i in range(8)],
            seed=2,
            config=RaincoreConfig.tuned(ring_size=8, hop_interval=0.005),
        )
        dicts = (
            {nid: SharedDict(cluster.node(nid)) for nid in cluster.node_ids}
            if replicated
            else None
        )
        cluster.start_all()
        for i in range(50):
            if dicts is not None:
                dicts[f"n{i % 8}"].set(f"k{i % 16}", i)
            else:
                cluster.node(f"n{i % 8}").multicast(f"m{i}", size=200)
        t0 = time.perf_counter()
        cluster.run(sim_seconds)
        t1 = time.perf_counter()
        return t1 - t0

    plain = one_run(False)
    replicated = one_run(True)
    return replicated / plain


def bench_prof_overhead(sim_seconds: float) -> float:
    """Profiler-overhead ratio of the loaded reference ring.

    Runs the :func:`bench_loaded_ring` workload twice — once as shipped
    (``loop.profile is None``, one attribute load per dispatch) and once
    with a :class:`~repro.obs.prof.Profiler` attached to the event loop —
    and returns ``profiled_wall / plain_wall``.
    """
    from repro.cluster.harness import RaincoreCluster
    from repro.core.config import RaincoreConfig

    def one_run(profiled: bool) -> float:
        cluster = RaincoreCluster(
            [f"n{i}" for i in range(8)],
            seed=2,
            config=RaincoreConfig.tuned(ring_size=8, hop_interval=0.005),
        )
        if profiled:
            from repro.obs.prof import Profiler

            Profiler().attach(cluster.loop)
        cluster.start_all()
        for i in range(50):
            cluster.node(f"n{i % 8}").multicast(f"m{i}", size=200)
        t0 = time.perf_counter()
        cluster.run(sim_seconds)
        t1 = time.perf_counter()
        return t1 - t0

    plain = one_run(False)
    profiled = one_run(True)
    return profiled / plain


def bench_agg_overhead(sim_seconds: float) -> float:
    """Streaming-aggregation overhead ratio over the probed reference ring.

    Runs the probed :func:`bench_loaded_ring` workload (bus + flight
    recorder, the ``probe_overhead_ratio`` numerator) twice — with and
    without a :class:`~repro.obs.agg.StreamAggregator` subscribed — and
    returns ``aggregated_wall / probed_wall``: what folding every probe
    into bounded per-node reducers costs on top of emitting the probes.
    """
    from repro.cluster.harness import RaincoreCluster
    from repro.core.config import RaincoreConfig

    def one_run(aggregated: bool) -> float:
        cluster = RaincoreCluster(
            [f"n{i}" for i in range(8)],
            seed=2,
            config=RaincoreConfig.tuned(ring_size=8, hop_interval=0.005),
        )
        from repro.obs import FlightRecorder

        bus = cluster.enable_probes()
        FlightRecorder(bus)
        if aggregated:
            from repro.obs.agg import StreamAggregator

            StreamAggregator().attach(bus)
        cluster.start_all()
        for i in range(50):
            cluster.node(f"n{i % 8}").multicast(f"m{i}", size=200)
        t0 = time.perf_counter()
        cluster.run(sim_seconds)
        t1 = time.perf_counter()
        return t1 - t0

    probed = one_run(False)
    aggregated = one_run(True)
    return aggregated / probed


def bench_telemetry_overhead(sim_seconds: float) -> float:
    """Probe-shipping overhead ratio over the probed reference ring.

    Runs the probed :func:`bench_loaded_ring` workload (bus + flight
    recorder, the ``probe_overhead_ratio`` numerator) twice — with and
    without a :class:`~repro.runtime.telemetry.TelemetryShipper`
    subscribed, its sink a no-op — and returns ``shipped_wall /
    probed_wall``: the per-event restamp + JSON framing cost of the
    raintap plane, measured without socket noise.
    """
    from repro.cluster.harness import RaincoreCluster
    from repro.core.config import RaincoreConfig

    def one_run(shipped: bool) -> float:
        cluster = RaincoreCluster(
            [f"n{i}" for i in range(8)],
            seed=2,
            config=RaincoreConfig.tuned(ring_size=8, hop_interval=0.005),
        )
        from repro.obs import FlightRecorder

        bus = cluster.enable_probes()
        recorder = FlightRecorder(bus)
        if shipped:
            from repro.runtime.telemetry import TelemetryShipper

            shipper = TelemetryShipper(
                "bench", lambda data: None, recorder=recorder
            )
            bus.subscribe(shipper.on_probe)
        cluster.start_all()
        for i in range(50):
            cluster.node(f"n{i % 8}").multicast(f"m{i}", size=200)
        t0 = time.perf_counter()
        cluster.run(sim_seconds)
        t1 = time.perf_counter()
        return t1 - t0

    probed = one_run(False)
    shipped = one_run(True)
    return shipped / probed


def bench_shard_scaling(
    sim_seconds: float,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    repeats: int = 3,
) -> dict[str, Any]:
    """Measure the sharded engine's scaling curve on the multi-ring workload.

    Runs :data:`SCALING_WORKLOAD` once per shard count — ``shards=1``
    through the serial engine (the reference), higher counts through the
    process engine — and reports wall seconds, raw speedup vs serial, and
    **core-normalized efficiency**: ``speedup / min(shards, cpu_count)``.

    Raw speedup is an honest machine-dependent number: on a single-core
    container 4 workers timeslice one CPU and raw speedup *cannot* exceed
    1.0, while the identical run on a 4-core machine approaches the
    efficiency bound × 4.  Efficiency is the machine-portable figure the
    baseline floors (see benchmarks/BENCH_baseline.json): on a >=4-core
    machine an efficiency of 0.5 *is* a 2x raw speedup at 4 shards.
    """
    from repro.parallel import ParallelSimulator, available_cpus

    walls: dict[int, float] = {}
    events: dict[int, int] = {}
    for shards in shard_counts:
        mode = "serial" if shards == 1 else "process"
        best = float("inf")
        for _ in range(repeats):
            sim = ParallelSimulator(
                "multi_ring", seed=11, params=SCALING_WORKLOAD
            )
            t0 = time.perf_counter()
            result = sim.run(sim_seconds, shards=shards, mode=mode)
            best = min(best, time.perf_counter() - t0)
            events[shards] = result.events
        walls[shards] = best
    cpus = available_cpus()
    curve = {
        str(shards): {
            "wall_seconds": round(walls[shards], 6),
            "speedup": round(walls[shard_counts[0]] / walls[shards], 4),
        }
        for shards in shard_counts
    }
    efficiency_4x = None
    if 4 in walls:
        efficiency_4x = round((walls[shard_counts[0]] / walls[4]) / min(4, cpus), 4)
    return {
        "workload": dict(SCALING_WORKLOAD, sim_seconds=sim_seconds),
        "cpu_count": cpus,
        "events": events[shard_counts[0]],
        "curve": curve,
        "shard_scaling_efficiency_4x": efficiency_4x,
    }


def run_suite(quick: bool = False, repeats: int | None = None) -> dict[str, Any]:
    """Run all benchmarks and return a report dict (see ``write_report``).

    Each benchmark runs ``repeats`` times; the best run is reported, which
    is the standard way to suppress scheduler noise when measuring a
    deterministic workload.
    """
    knobs = QUICK if quick else FULL
    if repeats is None:
        repeats = knobs["repeats"]
    best_loop = max(bench_event_loop(knobs["loop_events"]) for _ in range(repeats))
    best_ring = max(
        (bench_loaded_ring(knobs["ring_sim_seconds"]) for _ in range(repeats)),
        key=lambda r: r[0],
    )
    events_per_s, hops_per_s, wall_per_sim = best_ring
    best_overhead = min(
        bench_probe_overhead(knobs["ring_sim_seconds"]) for _ in range(repeats)
    )
    best_monitor = min(
        bench_monitor_overhead(knobs["ring_sim_seconds"]) for _ in range(repeats)
    )
    best_resync = min(
        bench_resync_overhead(knobs["ring_sim_seconds"]) for _ in range(repeats)
    )
    best_prof = min(
        bench_prof_overhead(knobs["ring_sim_seconds"]) for _ in range(repeats)
    )
    best_agg = min(
        bench_agg_overhead(knobs["ring_sim_seconds"]) for _ in range(repeats)
    )
    best_telemetry = min(
        bench_telemetry_overhead(knobs["ring_sim_seconds"]) for _ in range(repeats)
    )
    # The scaling curve spawns process fleets; cap its repeats at 2 to
    # keep suite time sane (the floor on its metric is a coarse guard, not
    # a tight gate — see benchmarks/BENCH_baseline.json).
    scaling = bench_shard_scaling(
        knobs["scaling_sim_seconds"], repeats=min(repeats, 2)
    )
    return {
        "schema": 1,
        "quick": quick,
        "repeats": repeats,
        "workload": {
            "loop_events": knobs["loop_events"],
            "ring_sim_seconds": knobs["ring_sim_seconds"],
            "ring_nodes": 8,
            "ring_multicasts": 50,
        },
        "metrics": {
            "event_loop_events_per_sec": round(best_loop),
            "loaded_ring_events_per_sec": round(events_per_s),
            "token_hops_per_sec": round(hops_per_s),
            "wall_clock_per_sim_second": round(wall_per_sim, 6),
            "probe_overhead_ratio": round(best_overhead, 4),
            "monitor_overhead_ratio": round(best_monitor, 4),
            "resync_overhead_ratio": round(best_resync, 4),
            "prof_overhead_ratio": round(best_prof, 4),
            "agg_overhead_ratio": round(best_agg, 4),
            "telemetry_overhead_ratio": round(best_telemetry, 4),
            "shard_scaling_efficiency_4x": scaling["shard_scaling_efficiency_4x"],
        },
        "shard_scaling": scaling,
    }


def write_report(path: str, report: dict[str, Any]) -> None:
    """Write a report (stable key order, trailing newline) to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def append_history(
    path: str,
    report: dict[str, Any],
    git_sha: str,
    date: str | None = None,
    label: str = "",
) -> dict[str, Any]:
    """Append one ``{git_sha, date, label, metrics}`` row to a history file.

    The file is a JSON object ``{"schema": 1, "rows": [...]}``; rows are
    kept in append order (oldest first).  Created if missing.  Returns the
    appended row.  ``date`` defaults to today — stamped here because
    perf.py is the one module allowed to read the wall clock (RC101).
    """
    if date is None:
        import datetime

        date = datetime.date.today().isoformat()
    try:
        with open(path, encoding="utf-8") as fh:
            history = json.load(fh)
    except FileNotFoundError:
        history = {"schema": 1, "rows": []}
    if "rows" not in history:
        raise ValueError(f"{path} is not a bench history file (no 'rows')")
    row = {
        "git_sha": git_sha,
        "date": date,
        "label": label,
        "quick": bool(report.get("quick", False)),
        "metrics": dict(report.get("metrics", {})),
    }
    history["rows"].append(row)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(history, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return row


def compare(
    current: dict[str, Any], baseline: dict[str, Any], tolerance: float
) -> list[str]:
    """Check ``current`` metrics against ``baseline`` metrics.

    Both arguments are report dicts (only their ``"metrics"`` maps are
    consulted; a bare metrics map is also accepted).  Returns a list of
    human-readable regression descriptions — empty when every shared metric
    is within ``tolerance`` (e.g. ``0.30`` = may be up to 30% worse).
    Metrics present on only one side are ignored, so the baseline file can
    gain metrics without breaking old checkouts.
    """
    cur = current.get("metrics", current)
    base = baseline.get("metrics", baseline)
    problems: list[str] = []
    for name, base_value in base.items():
        if name not in cur or not isinstance(base_value, (int, float)):
            continue
        if base_value <= 0:
            continue
        value = cur[name]
        if name in _LOWER_IS_BETTER:
            ratio = value / base_value  # >1 means slower
            if ratio > 1.0 + tolerance:
                problems.append(
                    f"{name}: {value} vs baseline {base_value} "
                    f"({ratio:.2f}x slower, tolerance {tolerance:.0%})"
                )
        else:
            ratio = value / base_value  # <1 means slower
            if ratio < 1.0 - tolerance:
                problems.append(
                    f"{name}: {value} vs baseline {base_value} "
                    f"({1 / ratio:.2f}x slower, tolerance {tolerance:.0%})"
                )
    return problems
