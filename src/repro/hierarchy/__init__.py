"""Hierarchical Raincore — the scalability extension of paper §5.

Sub-group token rings bridged by a leaders' ring, giving O(sqrt(N)) token
latency at N nodes while keeping every ring small enough for fast failure
detection.  Built entirely from unmodified session-service nodes.
"""

from repro.hierarchy.cluster import HierarchicalCluster
from repro.hierarchy.relay import GlobalFwd, GlobalIn, GlobalOut, HierarchicalMember

__all__ = [
    "HierarchicalCluster",
    "HierarchicalMember",
    "GlobalFwd",
    "GlobalIn",
    "GlobalOut",
]
