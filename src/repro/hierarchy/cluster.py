"""Harness for the hierarchical Raincore deployment (paper §5 extension).

Builds K sub-group rings plus the leaders' top ring on one simulated
network.  Every machine hosts two potential protocol endpoints — its local
ring member and a pre-provisioned top-ring node (``"<id>^t"``) that is only
started while the machine leads its sub-group.  Crashing a *machine* takes
both endpoints down, so leadership fail-over exercises the full path:
local-ring detection → new leader → top-ring 911 join → relay resumes.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import RaincoreConfig
from repro.core.session import RaincoreNode
from repro.core.states import NodeState
from repro.hierarchy.relay import HierarchicalMember
from repro.net.datagram import DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.net.topology import Segment, Topology

__all__ = ["HierarchicalCluster"]

TOP_SUFFIX = "^t"


class HierarchicalCluster:
    """K sub-group rings bridged by a leaders' ring.

    Parameters
    ----------
    groups:
        List of member-id lists, one per sub-group.  Ids must be globally
        unique; group leadership goes to the lowest live id in each group.
    seed, latency, jitter, loss:
        Simulated network parameters (one switched segment).
    hop_interval:
        Token hold time, used for both planes.
    """

    def __init__(
        self,
        groups: list[list[str]],
        *,
        seed: int = 0,
        latency: float = 100e-6,
        jitter: float = 20e-6,
        loss: float = 0.0,
        hop_interval: float = 0.010,
    ) -> None:
        if not groups or any(not g for g in groups):
            raise ValueError("need at least one non-empty group")
        flat = [nid for g in groups for nid in g]
        if len(set(flat)) != len(flat):
            raise ValueError("node ids must be globally unique")
        if any(TOP_SUFFIX in nid for nid in flat):
            raise ValueError(f"node ids may not contain {TOP_SUFFIX!r}")

        self.groups = [list(g) for g in groups]
        self.machine_ids = flat
        self.loop = EventLoop(seed=seed)
        self.topology = Topology()
        self.topology.add_segment(
            Segment("net0", latency=latency, jitter=jitter, loss=loss)
        )
        self.network = DatagramNetwork(self.loop, self.topology)

        top_ids = [nid + TOP_SUFFIX for nid in flat]
        for nid in flat:
            self.topology.add_node(nid)
            self.topology.attach(nid, f"{nid}@net0", "net0")
            tid = nid + TOP_SUFFIX
            self.topology.add_node(tid)
            self.topology.attach(tid, f"{tid}@net0", "net0")

        local_cfg = RaincoreConfig.tuned(
            ring_size=max(len(g) for g in groups), hop_interval=hop_interval
        )
        top_cfg = RaincoreConfig.tuned(
            ring_size=len(groups), hop_interval=hop_interval
        )

        self.members: dict[str, HierarchicalMember] = {}
        self.global_log: dict[str, list[tuple[str, Any]]] = {nid: [] for nid in flat}
        self.local_log: dict[str, list[tuple[str, Any]]] = {nid: [] for nid in flat}

        #: the globally-lowest machine bootstraps the top ring
        self._top_root = min(flat) + TOP_SUFFIX

        for group in self.groups:
            for nid in group:
                local = RaincoreNode(nid, self.loop, self.network, local_cfg)
                top = RaincoreNode(
                    nid + TOP_SUFFIX, self.loop, self.network, top_cfg
                )
                contacts = (
                    [] if nid + TOP_SUFFIX == self._top_root else
                    [t for t in top_ids if t != nid + TOP_SUFFIX]
                )
                member = HierarchicalMember(
                    local,
                    top,
                    contacts,
                    deliver=self._make_deliver(nid),
                )
                self.members[nid] = member

    def _make_deliver(self, nid: str):
        def deliver(origin: str, payload: Any, scope: str) -> None:
            log = self.global_log if scope == "global" else self.local_log
            log[nid].append((origin, payload))

        return deliver

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, budget: float | None = None) -> None:
        """Form every sub-group ring; leaders auto-activate the top ring."""
        for group in self.groups:
            first, *rest = group
            self.members[first].local.start_new_group()
            for nid in rest:
                self.members[nid].local.start_joining([first])
        budget = budget if budget is not None else 5.0 + len(self.machine_ids)
        deadline = self.loop.now + budget
        while self.loop.now < deadline:
            self.loop.run_for(0.05)
            if self.formed():
                return
        raise RuntimeError(
            f"hierarchy failed to form: locals={self.local_views()} "
            f"top={self.top_view()}"
        )

    def formed(self) -> bool:
        """Every sub-group converged and all leaders sit in the top ring."""
        for group in self.groups:
            live = [n for n in group if self.members[n].local.state is not NodeState.DOWN]
            if not live:
                continue
            views = {tuple(sorted(self.members[n].local.members)) for n in live}
            if views != {tuple(sorted(live))}:
                return False
        leaders = self.current_leaders()
        expect = {leader + TOP_SUFFIX for leader in leaders}
        for leader in leaders:
            top = self.members[leader].top
            if top.state is NodeState.DOWN or set(top.members) != expect:
                return False
        return True

    def run(self, duration: float) -> None:
        self.loop.run_for(duration)

    def run_until_formed(self, budget: float) -> bool:
        deadline = self.loop.now + budget
        while self.loop.now < deadline:
            self.loop.run_for(0.05)
            if self.formed():
                return True
        return self.formed()

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------
    def crash_machine(self, nid: str) -> None:
        """Kill a machine: both its protocol endpoints and its NICs."""
        member = self.members[nid]
        member.local.crash()
        member.top.crash()
        self.topology.set_node_up(nid, False)
        self.topology.set_node_up(nid + TOP_SUFFIX, False)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def group_of(self, nid: str) -> list[str]:
        for group in self.groups:
            if nid in group:
                return group
        raise KeyError(nid)

    def current_leaders(self) -> list[str]:
        leaders = []
        for group in self.groups:
            live = [
                n for n in group if self.members[n].local.state is not NodeState.DOWN
            ]
            if live:
                leaders.append(min(live))
        return leaders

    def local_views(self) -> dict[str, tuple[str, ...]]:
        return {
            nid: m.local.members
            for nid, m in self.members.items()
            if m.local.state is not NodeState.DOWN
        }

    def top_view(self) -> tuple[str, ...]:
        for leader in self.current_leaders():
            top = self.members[leader].top
            if top.state is not NodeState.DOWN and top.members:
                return top.members
        return ()

    def live_machines(self) -> list[str]:
        return [
            nid
            for nid, m in self.members.items()
            if m.local.state is not NodeState.DOWN
        ]
