"""Global-multicast relay envelopes and per-member logic for the
hierarchical extension (paper §5, first future-work item:

    "The Group Communication Protocols are being extended to address more
    challenging scenarios.  For example, we are currently working on the
    hierarchical design that extends the scalability of the protocol.")

Two planes of the *unchanged* Raincore protocol:

* every node is a member of one **local ring** (its sub-group);
* the current **leader** of each sub-group (lowest live member id) also
  runs a second session node in the **top ring** that connects the
  sub-groups.

A *global* multicast travels origin → local ring (``GlobalOut``) → origin's
leader → top ring (``GlobalFwd``) → every leader → its local ring
(``GlobalIn``) → every node.  Delivery happens **only** from the
``GlobalIn`` re-injection — including at the origin's own sub-group — so
the top ring's token order becomes the single global order every node
observes.  Leaders re-inject in top-token order, local rings preserve each
injector's FIFO, hence all nodes deliver global messages identically.

Leadership is failure-driven: when a sub-group's view changes, its lowest
surviving member activates its (pre-provisioned, idle) top-plane node,
which joins the top ring via the standard 911 join; a dead leader's
top-plane node is removed by the top ring's own aggressive failure
detection.  Duplicate forwarding across a leadership change is possible
(at-least-once relay) and suppressed by per-message uid at delivery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.events import Delivery, SessionListener, ViewChange, ensure_composite
from repro.core.session import RaincoreNode

__all__ = ["GlobalOut", "GlobalFwd", "GlobalIn", "HierarchicalMember"]


@dataclass(frozen=True)
class GlobalOut:
    """Local-plane envelope: origin asks its leader to forward globally."""

    origin: str
    uid: tuple[str, int]
    payload: Any
    size: int

    def wire_size(self) -> int:
        return 24 + self.size


@dataclass(frozen=True)
class GlobalFwd:
    """Top-plane envelope: a leader carries the message between sub-groups."""

    group: str
    origin: str
    uid: tuple[str, int]
    payload: Any
    size: int

    def wire_size(self) -> int:
        return 32 + self.size


@dataclass(frozen=True)
class GlobalIn:
    """Local-plane envelope: a leader re-injects a global message."""

    origin: str
    uid: tuple[str, int]
    payload: Any
    size: int

    def wire_size(self) -> int:
        return 24 + self.size


#: Delivery callback: (origin node id, payload, scope "local" | "global").
HierDeliver = Callable[[str, Any, str], None]


class HierarchicalMember(SessionListener):
    """One machine's presence in the hierarchy.

    Wraps the machine's local-ring :class:`RaincoreNode` and, when this
    machine is its sub-group's leader, an activated top-ring node.  The
    top-plane node object is pre-provisioned for every member (any member
    may become leader) but only started on leadership.
    """

    def __init__(
        self,
        local: RaincoreNode,
        top: RaincoreNode,
        top_contacts: list[str],
        deliver: HierDeliver | None = None,
    ) -> None:
        self.local = local
        self.top = top
        self.top_contacts = [c for c in top_contacts if c != top.node_id]
        self.deliver = deliver
        self._uids = itertools.count(1)
        self._forwarded: set[tuple[str, int]] = set()
        self._delivered_global: set[tuple[str, int]] = set()
        # Relay reliability across leadership changes: every member
        # remembers in-flight GlobalOuts until it sees the GlobalIn echo;
        # a member that *becomes* leader re-forwards whatever is left.
        self._seen_out: dict[tuple[str, int], GlobalOut] = {}
        ensure_composite(local).add(self)
        ensure_composite(top).add(_TopRelay(self))
        self.globals_forwarded = 0
        self.globals_reinjected = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> str:
        return self.local.node_id

    @property
    def is_leader(self) -> bool:
        members = self.local.members
        return bool(members) and min(members) == self.local.node_id

    @property
    def top_active(self) -> bool:
        return self.top.state.value != "down"

    def multicast_local(self, payload: Any, size: int = 64) -> None:
        """Sub-group-scoped multicast: one local token ride, cheap."""
        self.local.multicast(payload, size=size)

    def multicast_global(self, payload: Any, size: int = 64) -> tuple[str, int]:
        """Cluster-wide multicast, totally ordered by the top ring."""
        uid = (self.local.node_id, next(self._uids))
        self.local.multicast(
            GlobalOut(self.local.node_id, uid, payload, size), size=size + 24
        )
        return uid

    # ------------------------------------------------------------------
    # local-plane events
    # ------------------------------------------------------------------
    def on_deliver(self, delivery: Delivery) -> None:
        payload = delivery.payload
        if isinstance(payload, GlobalOut):
            self._seen_out[payload.uid] = payload
            self._maybe_forward(payload)
        elif isinstance(payload, GlobalIn):
            self._seen_out.pop(payload.uid, None)
            self._deliver_global(payload)
        else:
            if self.deliver is not None:
                self.deliver(delivery.origin, payload, "local")

    def _maybe_forward(self, msg: GlobalOut) -> None:
        # Every member sees the GlobalOut; only the current leader relays,
        # and only while its top-plane presence is live — otherwise the
        # message stays in _seen_out and is flushed on (re)activation.
        if not self.is_leader or not self.top.is_member:
            return
        if msg.uid in self._forwarded:
            return
        self._forwarded.add(msg.uid)
        self.globals_forwarded += 1
        self.top.multicast(
            GlobalFwd(self.local.group_id, msg.origin, msg.uid, msg.payload, msg.size),
            size=msg.size + 32,
        )

    def _flush_pending_out(self) -> None:
        """(Re)forward every in-flight global we have not seen echoed."""
        for msg in list(self._seen_out.values()):
            self._maybe_forward(msg)

    def _deliver_global(self, msg: GlobalIn) -> None:
        if msg.uid in self._delivered_global:
            return
        self._delivered_global.add(msg.uid)
        if self.deliver is not None:
            self.deliver(msg.origin, msg.payload, "global")

    # ------------------------------------------------------------------
    # leadership management
    # ------------------------------------------------------------------
    def on_view_change(self, view: ViewChange) -> None:
        if not view.members:
            return
        if min(view.members) == self.local.node_id:
            if not self.top_active:
                # We just became leader: activate our top-plane presence.
                if self.top_contacts:
                    self.top.start_joining(list(self.top_contacts))
                else:
                    self.top.start_new_group()
            self._flush_pending_out()
        elif self.top_active:
            # Lost leadership (e.g. a lower-id member rejoined or merged
            # in): retire from the top ring.
            self.top.leave()

    # ------------------------------------------------------------------
    # top-plane re-injection (called by _TopRelay)
    # ------------------------------------------------------------------
    def _reinject(self, msg: GlobalFwd) -> None:
        if not self.is_leader:
            return  # a newer leader will re-inject it
        self.globals_reinjected += 1
        self.local.multicast(
            GlobalIn(msg.origin, msg.uid, msg.payload, msg.size), size=msg.size + 24
        )


class _TopRelay(SessionListener):
    """Top-plane listener: hands forwarded globals back to the member."""

    def __init__(self, member: HierarchicalMember) -> None:
        self.member = member
        self._reinjected: set[tuple[str, int]] = set()

    def on_view_change(self, view) -> None:
        # Top-plane membership reached (or changed): flush any globals that
        # queued up while our top presence was still joining.
        self.member._flush_pending_out()

    def on_deliver(self, delivery: Delivery) -> None:
        payload = delivery.payload
        if not isinstance(payload, GlobalFwd):
            return
        if payload.uid in self._reinjected:
            return
        self._reinjected.add(payload.uid)
        self.member._reinject(payload)
