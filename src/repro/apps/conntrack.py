"""Replicated connection table — Rainwall's shared assignment state.

Paper §3.2: "The load and connection assignment information are shared
among the cluster using the Raincore Distributed Session Service."

Every gateway runs a :class:`ConnectionTable`.  When the packet engine
places a new connection, the entry gateway forwards traffic *immediately*
(the fast path never waits for replication) and multicasts the assignment;
every member applies the same assignment stream in the same order, so all
gateways know every connection's home.

That replicated knowledge is what makes connection fail-over transparent:
when the membership view drops a gateway, each survivor scans its table for
orphaned connections and **adopts** a deterministic share of them
(``hash(flow) % len(survivors)``) by multicasting a re-assignment; it
starts forwarding the moment its own re-assignment op is delivered back to
it.  No simulator ground truth is consulted anywhere — fail-over latency is
detection + view change + one token ride, exactly the paper's pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.events import Delivery, SessionListener, ViewChange, ensure_composite
from repro.core.session import RaincoreNode

__all__ = ["ConnAssign", "ConnClose", "ConnectionTable"]


@dataclass(frozen=True)
class ConnAssign:
    """Replicated fact: connection ``flow_id`` is handled by ``gateway``."""

    flow_id: int
    gateway: str

    def wire_size(self) -> int:
        return 16


@dataclass(frozen=True)
class ConnClose:
    """Replicated fact: connection ``flow_id`` finished."""

    flow_id: int

    def wire_size(self) -> int:
        return 12


class ConnectionTable(SessionListener):
    """Per-gateway replica of the cluster's connection-assignment map."""

    def __init__(
        self,
        node: RaincoreNode,
        on_assignment: Callable[[int, str], None] | None = None,
    ) -> None:
        self.node = node
        #: fired on *this* node when any assignment op is delivered here;
        #: the Rainwall agent uses it to start forwarding adopted flows.
        self.on_assignment = on_assignment
        ensure_composite(node).add(self)
        self._table: dict[int, str] = {}
        self._last_view: tuple[str, ...] = ()
        self.adoptions = 0

    # ------------------------------------------------------------------
    # fast-path hooks (called by the packet engine)
    # ------------------------------------------------------------------
    def record(self, flow_id: int, gateway: str) -> None:
        """Share a fresh placement with the cluster (async, non-blocking)."""
        self.node.multicast(ConnAssign(flow_id, gateway))

    def close(self, flow_id: int) -> None:
        """Share that a connection completed (keeps the table bounded)."""
        self.node.multicast(ConnClose(flow_id))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def home_of(self, flow_id: int) -> str | None:
        return self._table.get(flow_id)

    def connections_on(self, gateway: str) -> list[int]:
        return [fid for fid, gw in self._table.items() if gw == gateway]

    def size(self) -> int:
        return len(self._table)

    def snapshot(self) -> dict[int, str]:
        return dict(self._table)

    # ------------------------------------------------------------------
    # replicated state machine
    # ------------------------------------------------------------------
    def on_deliver(self, delivery: Delivery) -> None:
        op = delivery.payload
        if isinstance(op, ConnAssign):
            self._table[op.flow_id] = op.gateway
            if op.gateway == self.node.node_id and self.on_assignment is not None:
                self.on_assignment(op.flow_id, op.gateway)
            # Late assignment to a gateway that has already left the view
            # (the op was in flight when the failure was detected): the
            # responsible survivor re-adopts it right away.
            members = self.node.members
            if members and op.gateway not in members:
                self._maybe_adopt(op.flow_id, members)
        elif isinstance(op, ConnClose):
            self._table.pop(op.flow_id, None)

    def _maybe_adopt(self, flow_id: int, members: tuple[str, ...]) -> None:
        survivors = sorted(members)
        my_rank = survivors.index(self.node.node_id) if self.node.node_id in survivors else -1
        if my_rank >= 0 and flow_id % len(survivors) == my_rank:
            self.adoptions += 1
            self.record(flow_id, self.node.node_id)

    # ------------------------------------------------------------------
    # connection fail-over: adopt the dead gateway's flows
    # ------------------------------------------------------------------
    def on_view_change(self, view: ViewChange) -> None:
        removed = set(self._last_view) - set(view.members)
        self._last_view = view.members
        if not removed or self.node.node_id not in view.members:
            return
        for dead in removed:
            for flow_id in sorted(self.connections_on(dead)):
                self._maybe_adopt(flow_id, view.members)
