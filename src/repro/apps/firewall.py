"""Rule-based packet filter — the clustered networking element of §3.2.

    "Firewall is essentially a router that filters traffic according to a
    security policy."

Rules are evaluated first-match in order; the default policy is DENY, the
standard stance for enterprise entry points.  Matching works on the flow
metadata the traffic engine carries (client id prefix, destination port,
target VIP), which is the flow-level analogue of 5-tuple matching.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from repro.apps.traffic import Flow

__all__ = ["Rule", "Action", "Firewall", "ALLOW_WEB_POLICY"]


@dataclass(frozen=True)
class Rule:
    """One policy entry: patterns are shell-style globs, None = wildcard."""

    action: str  # "allow" | "deny"
    src: str | None = None
    vip: str | None = None
    dst_port: int | None = None
    comment: str = ""

    def __post_init__(self) -> None:
        if self.action not in ("allow", "deny"):
            raise ValueError(f"unknown action {self.action!r}")

    def matches(self, flow: Flow) -> bool:
        if self.src is not None and not fnmatch.fnmatch(flow.src, self.src):
            return False
        if self.vip is not None and not fnmatch.fnmatch(flow.vip, self.vip):
            return False
        if self.dst_port is not None and flow.dst_port != self.dst_port:
            return False
        return True


class Action:
    ALLOW = "allow"
    DENY = "deny"


@dataclass
class Firewall:
    """Ordered first-match filter with default deny."""

    rules: list[Rule] = field(default_factory=list)
    allowed: int = 0
    denied: int = 0

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def permits(self, flow: Flow) -> bool:
        """Evaluate the policy for a new connection."""
        for rule in self.rules:
            if rule.matches(flow):
                if rule.action == Action.ALLOW:
                    self.allowed += 1
                    return True
                self.denied += 1
                return False
        self.denied += 1
        return False


#: The Fig. 3 benchmark policy: permit web traffic to the advertised VIPs.
ALLOW_WEB_POLICY = [Rule(Action.ALLOW, dst_port=80, comment="permit HTTP")]
