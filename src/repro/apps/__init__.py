"""Applications built on the Raincore services (paper §3).

* :mod:`repro.apps.vip` — the Virtual IP Manager (§3.1).
* :mod:`repro.apps.firewall` — the rule-based packet filter being clustered.
* :mod:`repro.apps.traffic` — the flow-level HTTP workload of Fig. 3.
* :mod:`repro.apps.rainwall` — Rainwall: firewall clustering with
  connection-by-connection load balancing and transparent fail-over (§3.2).
"""

from repro.apps.conntrack import ConnAssign, ConnClose, ConnectionTable
from repro.apps.firewall import ALLOW_WEB_POLICY, Action, Firewall, Rule
from repro.apps.nat import NatMapping, NatOp, NatSnapshot, NatTable
from repro.apps.rainwall import RainwallCluster, RainwallConfig, RainwallNode
from repro.apps.traffic import Flow, FlowStats, GatewayPort, TrafficEngine
from repro.apps.vip import ArpSubnet, VirtualIPManager, compute_assignment

__all__ = [
    "ALLOW_WEB_POLICY",
    "Action",
    "ConnAssign",
    "ConnClose",
    "ConnectionTable",
    "Firewall",
    "NatMapping",
    "NatOp",
    "NatSnapshot",
    "NatTable",
    "Rule",
    "RainwallCluster",
    "RainwallConfig",
    "RainwallNode",
    "Flow",
    "FlowStats",
    "GatewayPort",
    "TrafficEngine",
    "ArpSubnet",
    "VirtualIPManager",
    "compute_assignment",
]
