"""Flow-level HTTP traffic workload — the Rainwall benchmark's load source.

The paper's Fig. 3 testbed puts HTTP clients on one side of the Rainwall
cluster and Apache servers on the other, and measures aggregate web
throughput through the gateways.  We substitute a fluid flow-level model
(DESIGN.md §2): connections arrive as a Poisson process, each carries a
download of configurable size, and the active flows on a gateway share that
gateway's forwarding capacity (processor sharing — the standard abstraction
for TCP fair-sharing on a bottleneck).

The engine advances on a fixed tick driven by the simulation event loop, so
traffic and the Raincore protocols interleave in the same virtual time — a
gateway failure mid-download stalls exactly the flows routed to it until
the cluster's fail-over machinery (VIP move, connection reassignment)
repairs the path, which is how the two-second fail-over claim (paper §3.2)
is measured rather than asserted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.net.eventloop import EventLoop

__all__ = ["Flow", "GatewayPort", "TrafficEngine", "FlowStats"]


@dataclass
class Flow:
    """One client connection downloading ``size_bytes`` through a gateway."""

    flow_id: int
    vip: str  #: the public virtual IP the client connected to
    src: str  #: client identifier (used by firewall rules)
    dst_port: int  #: server port (used by firewall rules)
    size_bytes: float
    gateway: str | None = None  #: current forwarding gateway (None = stalled)
    done_bytes: float = 0.0
    started_at: float = 0.0
    finished_at: float | None = None
    stalled_since: float | None = None
    total_stall: float = 0.0

    @property
    def done(self) -> bool:
        return self.finished_at is not None


@dataclass
class GatewayPort:
    """One gateway's forwarding plane as the traffic engine sees it.

    ``capacity_bps`` models the gateway's measured forwarding rate — the
    paper's single-node Rainwall gateway forwards ~95 Mbit/s of web traffic
    through its Fast Ethernet NICs.
    """

    node_id: str
    capacity_bps: float = 95e6
    up: bool = True
    flows: set[int] = field(default_factory=set)
    forwarded_bytes: float = 0.0


@dataclass
class FlowStats:
    """Aggregate workload outcomes for reporting."""

    started: int = 0
    completed: int = 0
    denied: int = 0
    total_bytes: float = 0.0

    def throughput_bps(self, duration: float) -> float:
        return 8.0 * self.total_bytes / duration if duration > 0 else 0.0


class TrafficEngine:
    """Poisson connection arrivals + processor-sharing fluid transfer.

    Parameters
    ----------
    loop:
        Simulation event loop (time base and RNG).
    admit:
        Callback deciding admission and placement for a new flow: returns a
        gateway node id, or ``None`` to deny (firewall reject).  This is
        where Rainwall's packet engine plugs in.
    vips:
        Public virtual IPs; arriving connections pick one uniformly, like
        clients spread over DNS-advertised addresses.
    arrival_rate:
        New connections per second.
    flow_size:
        Download size per connection in bytes (callable for distributions).
    tick:
        Fluid-model integration step in seconds.
    """

    def __init__(
        self,
        loop: EventLoop,
        admit: Callable[[Flow], str | None],
        vips: list[str],
        *,
        arrival_rate: float = 100.0,
        flow_size: float | Callable[[], float] = 1_000_000.0,
        tick: float = 0.010,
    ) -> None:
        if not vips:
            raise ValueError("need at least one VIP")
        if arrival_rate <= 0 or tick <= 0:
            raise ValueError("arrival_rate and tick must be positive")
        self.loop = loop
        self.admit = admit
        self.vips = list(vips)
        self.arrival_rate = arrival_rate
        self.flow_size = flow_size
        self.tick = tick
        self.gateways: dict[str, GatewayPort] = {}
        self.flows: dict[int, Flow] = {}
        self.stats = FlowStats()
        self._flow_ids = itertools.count(1)
        self._client_ids = itertools.count(1)
        self._running = False
        # Per-tick delivered bytes, for hiccup/gap analysis (paper §3.2).
        self.timeline: list[tuple[float, float]] = []
        #: optional hook fired when a flow completes (connection teardown).
        self.on_complete: Callable[[Flow], None] | None = None

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def add_gateway(self, node_id: str, capacity_bps: float = 95e6) -> GatewayPort:
        port = GatewayPort(node_id, capacity_bps)
        self.gateways[node_id] = port
        return port

    def set_gateway_up(self, node_id: str, up: bool) -> None:
        """Mark a gateway dead/alive; its flows stall until reassigned."""
        port = self.gateways[node_id]
        port.up = up
        if not up:
            now = self.loop.now
            for fid in list(port.flows):
                flow = self.flows[fid]
                flow.gateway = None
                flow.stalled_since = now
            port.flows.clear()

    def reassign_flows(self, flow_ids: list[int], chooser: Callable[[Flow], str | None]) -> int:
        """Re-place stalled flows via ``chooser``; returns how many resumed."""
        resumed = 0
        now = self.loop.now
        for fid in flow_ids:
            flow = self.flows.get(fid)
            if flow is None or flow.done or flow.gateway is not None:
                continue
            target = chooser(flow)
            if target is None:
                continue
            port = self.gateways.get(target)
            if port is None or not port.up:
                continue
            flow.gateway = target
            port.flows.add(fid)
            if flow.stalled_since is not None:
                flow.total_stall += now - flow.stalled_since
                flow.stalled_since = None
            resumed += 1
        return resumed

    def stalled_flow_ids(self) -> list[int]:
        return [
            fid
            for fid, f in self.flows.items()
            if not f.done and f.gateway is None
        ]

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_arrival()
        self.loop.call_later(self.tick, self._tick)

    def stop(self) -> None:
        self._running = False

    def _schedule_arrival(self) -> None:
        if not self._running:
            return
        delay = self.loop.rng.expovariate(self.arrival_rate)
        self.loop.call_later(delay, self._arrive)

    def _arrive(self) -> None:
        if not self._running:
            return
        self._schedule_arrival()
        size = self.flow_size() if callable(self.flow_size) else self.flow_size
        flow = Flow(
            flow_id=next(self._flow_ids),
            vip=self.vips[self.loop.rng.randrange(len(self.vips))],
            src=f"client-{next(self._client_ids)}",
            dst_port=80,
            size_bytes=float(size),
            started_at=self.loop.now,
        )
        target = self.admit(flow)
        if target is None:
            self.stats.denied += 1
            return
        port = self.gateways.get(target)
        self.flows[flow.flow_id] = flow
        self.stats.started += 1
        if port is None or not port.up:
            flow.stalled_since = self.loop.now  # blackholed until repair
            return
        flow.gateway = target
        port.flows.add(flow.flow_id)

    def _tick(self) -> None:
        if not self._running:
            return
        delivered_this_tick = 0.0
        for port in self.gateways.values():
            if not port.up or not port.flows:
                continue
            budget = port.capacity_bps / 8.0 * self.tick  # bytes this tick
            share = budget / len(port.flows)
            finished: list[int] = []
            for fid in port.flows:
                flow = self.flows[fid]
                take = min(share, flow.size_bytes - flow.done_bytes)
                flow.done_bytes += take
                delivered_this_tick += take
                port.forwarded_bytes += take
                if flow.done_bytes >= flow.size_bytes:
                    flow.finished_at = self.loop.now
                    finished.append(fid)
            for fid in finished:
                port.flows.discard(fid)
                self.stats.completed += 1
                if self.on_complete is not None:
                    self.on_complete(self.flows[fid])
        self.stats.total_bytes += delivered_this_tick
        self.timeline.append((self.loop.now, delivered_this_tick))
        self.loop.call_later(self.tick, self._tick)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def throughput_bps(self, since: float = 0.0, until: float | None = None) -> float:
        """Mean delivered rate (bits/s) over a timeline window."""
        until = until if until is not None else self.loop.now
        window = [b for t, b in self.timeline if since <= t <= until]
        duration = until - since
        if duration <= 0:
            return 0.0
        return 8.0 * sum(window) / duration

    def longest_gap(self, threshold_fraction: float = 0.1) -> float:
        """Longest run of ticks delivering under ``threshold_fraction`` of
        the median tick volume — the client-visible "hiccup" of paper §3.2."""
        if not self.timeline:
            return 0.0
        volumes = sorted(b for _, b in self.timeline)
        median = volumes[len(volumes) // 2]
        floor = median * threshold_fraction
        longest = current = 0.0
        prev_t = None
        for t, b in self.timeline:
            if b < floor:
                current += self.tick if prev_t is None else (t - prev_t)
                longest = max(longest, current)
            else:
                current = 0.0
            prev_t = t
        return longest
