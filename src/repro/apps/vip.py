"""Virtual IP Manager — paper §3.1.

    "One way of distributing traffic to a group of networking elements is by
    maintaining a pool of highly available virtual IPs among the group
    members.  ...  The virtual IPs are mutually exclusively assigned to
    different nodes in the cluster by the Virtual IP manager.  In the
    presence of failures, Raincore ... promptly moves all the virtual IPs
    that was owned by the failed node to healthy ones."

Implementation
--------------
* The assignment table lives in a :class:`~repro.data.shared_dict.SharedDict`
  under ``vip:<address>`` keys, so every member sees the same table in the
  same order.
* Reassignment is performed by the group coordinator (lowest node id)
  **inside the master-lock** (``run_exclusive``), honouring the paper's
  "uses the master-lock to make sure that there is no conflict in the
  virtual IP address assignments".  The computation itself is stable: VIPs
  whose owner is still alive never move on fail-over; orphans go to the
  least-loaded survivors.
* When a node observes in the replicated table that it gained a VIP, it
  installs it and sends a **gratuitous ARP** on the subnet; MAC addresses
  never move (paper: "MAC addresses are never moved and remain unique").
  :class:`ArpSubnet` models the subnet's ARP caches with a configurable
  refresh latency, which is part of the measured fail-over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import Delivery, SessionListener, ViewChange, ensure_composite
from repro.core.session import RaincoreNode
from repro.data.shared_dict import DictOp, SharedDict

__all__ = ["ArpSubnet", "VirtualIPManager", "compute_assignment"]


@dataclass
class ArpSubnet:
    """The subnet's collective ARP view: which MAC answers for each VIP.

    ``refresh_latency`` models how long routers/hosts take to honour a
    gratuitous ARP (cache update + switch re-learning).
    """

    refresh_latency: float = 0.010
    table: dict[str, str] = field(default_factory=dict)  # vip -> node id
    history: list[tuple[float, str, str]] = field(default_factory=list)

    def gratuitous_arp(self, loop, vip: str, node_id: str) -> None:
        """Announce that ``vip`` now answers at ``node_id``'s MAC."""
        now = loop.now
        self.history.append((now, vip, node_id))

        def apply():
            self.table[vip] = node_id

        loop.call_later(self.refresh_latency, apply)

    def resolve(self, vip: str) -> str | None:
        """Where the subnet currently believes ``vip`` lives."""
        return self.table.get(vip)


def compute_assignment(
    vips: list[str],
    current: dict[str, str],
    live: tuple[str, ...],
) -> dict[str, str]:
    """Stable, balanced VIP → owner assignment.

    A VIP keeps its live owner as long as that owner is not above its fair
    share (⌈V/N⌉) — so a member's failure never moves the *other* members'
    VIPs, while a join pulls excess VIPs onto the newcomer (the paper's
    load-balancing moves).  Orphaned and excess VIPs go to the members
    owning the fewest, ties broken by ring order.  Pure function — every
    node computes the identical table from the same inputs.
    """
    if not live:
        return {}
    cap = -(-len(vips) // len(live))  # ceil(V / N): fair share
    counts = {m: 0 for m in live}
    assignment: dict[str, str] = {}
    for vip in sorted(vips):
        owner = current.get(vip)
        if owner in counts and counts[owner] < cap:
            assignment[vip] = owner
            counts[owner] += 1
    for vip in sorted(vips):
        if vip in assignment:
            continue
        owner = min(live, key=lambda m: (counts[m], live.index(m)))
        assignment[vip] = owner
        counts[owner] += 1
    return assignment


class VirtualIPManager(SessionListener):
    """Per-node VIP manager over one Raincore group.

    All members construct one with the same ``vip_pool`` and a shared
    :class:`ArpSubnet`; attach before starting the node::

        shared = SharedDict(node)
        vipman = VirtualIPManager(node, shared, subnet, ["10.0.0.1", ...])
    """

    KEY_PREFIX = "vip:"

    def __init__(
        self,
        node: RaincoreNode,
        shared: SharedDict,
        subnet: ArpSubnet,
        vip_pool: list[str],
    ) -> None:
        if not vip_pool:
            raise ValueError("need at least one virtual IP")
        self.node = node
        self.shared = shared
        self.subnet = subnet
        self.vip_pool = list(vip_pool)
        self.installed: set[str] = set()  #: VIPs bound to this node's NIC
        self.moves = 0  #: table-change count observed locally
        ensure_composite(node).add(self)
        self._last_members: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def assignment(self) -> dict[str, str]:
        """The replicated VIP table as this node currently sees it."""
        return {
            key[len(self.KEY_PREFIX):]: owner
            for key, owner in self.shared.snapshot().items()
            if isinstance(key, str) and key.startswith(self.KEY_PREFIX)
        }

    def owner_of(self, vip: str) -> str | None:
        return self.shared.get(self.KEY_PREFIX + vip)  # type: ignore[return-value]

    def owned_vips(self) -> set[str]:
        return set(self.installed)

    # ------------------------------------------------------------------
    # coordinator: (re)assignment under the master lock
    # ------------------------------------------------------------------
    def on_view_change(self, view: ViewChange) -> None:
        self._last_members = view.members
        if not view.members or self.node.node_id != min(view.members):
            return
        members = view.members

        def reassign() -> None:
            # Inside the master lock: we hold the token, so no competing
            # coordinator can interleave its own assignment writes.
            if tuple(self.node.members) != members:
                return  # the view moved on; the newer change will handle it
            desired = compute_assignment(
                self.vip_pool, self.assignment(), members
            )
            for vip, owner in desired.items():
                if self.owner_of(vip) != owner:
                    self.shared.set(self.KEY_PREFIX + vip, owner)

        self.node.run_exclusive(reassign)

    def rebalance(self) -> None:
        """Evenly redistribute VIPs over current members (paper: "The
        Virtual IPs can also be moved for load balancing").

        Unlike fail-over reassignment this may move VIPs away from live
        nodes; only the coordinator should call it.
        """
        members = self.node.members

        def do() -> None:
            live = self.node.members
            if not live:
                return
            for i, vip in enumerate(sorted(self.vip_pool)):
                owner = live[i % len(live)]
                if self.owner_of(vip) != owner:
                    self.shared.set(self.KEY_PREFIX + vip, owner)

        self.node.run_exclusive(do)

    # ------------------------------------------------------------------
    # every node: claim / release on table changes
    # ------------------------------------------------------------------
    def on_deliver(self, delivery: Delivery) -> None:
        op = delivery.payload
        if not isinstance(op, DictOp) or not op.key.startswith(self.KEY_PREFIX):
            return
        vip = op.key[len(self.KEY_PREFIX):]
        if vip not in self.vip_pool:
            return
        self.moves += 1
        probe = self.node.probe
        if op.kind == "set" and op.value == self.node.node_id:
            if vip not in self.installed:
                self.installed.add(vip)
                if probe is not None:
                    probe.emit(self.node.node_id, "app.vip_install", vip)
                # Claim: refresh every ARP cache on the subnet so traffic
                # shifts to our (unchanged, unique) MAC address.
                self.subnet.gratuitous_arp(self.node.loop, vip, self.node.node_id)
        else:
            if vip in self.installed and probe is not None:
                probe.emit(self.node.node_id, "app.vip_release", vip)
            self.installed.discard(vip)

    def on_shutdown(self, reason: str) -> None:
        # A dead NIC answers no ARP; drop local installs (the survivors'
        # coordinator will move the VIPs and re-ARP them elsewhere).
        self.installed.clear()
