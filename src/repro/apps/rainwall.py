"""Rainwall — the firewall-clustering application of paper §3.2.

    "Rainwall is a commercial application using Raincore Distributed
    Services to deliver a high-availability and load-balancing clustering
    solution for firewalls. ...  Rainwall also includes a kernel-level
    software packet engine that load-balances traffic connection by
    connection to all firewall nodes in the cluster.  The load and
    connection assignment information are shared among the cluster using
    the Raincore Distributed Session Service."

Composition (everything rides one simulated cluster):

* a :class:`~repro.cluster.harness.RaincoreCluster` of gateway nodes;
* per node: a :class:`~repro.data.shared_dict.SharedDict` replica, a
  :class:`~repro.apps.vip.VirtualIPManager`, a rule-based
  :class:`~repro.apps.firewall.Firewall`, and periodic load publication
  into the shared dictionary — the "load information shared using
  Raincore";
* one :class:`~repro.apps.traffic.TrafficEngine` carrying the HTTP
  workload, admitted and placed by the packet engine
  (:meth:`RainwallCluster._admit`): resolve the VIP through the subnet's
  ARP view, filter through the firewall policy, then place the connection
  on the least-loaded live gateway;
* a replicated :class:`~repro.apps.conntrack.ConnectionTable` — the
  paper's "connection assignment information ... shared among the cluster
  using the Raincore Distributed Session Service": placements are
  multicast asynchronously (the fast path never waits), and on a view
  change the survivors adopt the dead gateway's connections from their
  replica and resume them the moment their re-assignment op is delivered;
* critical-resource monitoring of each gateway's external NIC, so an
  unplugged cable shuts the node down and triggers fail-over (the paper's
  §3.2 experiment);
* a client-retry loop: connections whose SYN blackholed (stale ARP during
  a fail-over window) are re-admitted periodically, modelling TCP
  retransmission — the only simulator-side repair, because it models the
  *clients*, not the cluster.  Everything cluster-side is protocol-driven,
  so measured fail-over times are honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.conntrack import ConnectionTable
from repro.apps.firewall import ALLOW_WEB_POLICY, Firewall, Rule
from repro.apps.traffic import Flow, TrafficEngine
from repro.apps.vip import ArpSubnet, VirtualIPManager
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.core.events import SessionListener, ensure_composite
from repro.core.resources import CriticalResource
from repro.core.states import NodeState
from repro.data.shared_dict import SharedDict
from repro.net.stats import CpuModel

__all__ = ["RainwallConfig", "RainwallCluster", "RainwallNode"]


@dataclass
class RainwallConfig:
    """Rainwall deployment knobs (defaults match the Fig. 3 testbed scale)."""

    vips: list[str] = field(default_factory=lambda: ["10.1.0.1", "10.1.0.2"])
    gateway_capacity_bps: float = 95e6  #: measured single-gateway rate
    rules: list[Rule] = field(default_factory=lambda: list(ALLOW_WEB_POLICY))
    arrival_rate: float = 200.0  #: connections per second
    flow_size: float = 500_000.0  #: bytes per download
    traffic_tick: float = 0.010
    load_publish_interval: float = 0.100  #: shared load-table refresh
    repair_interval: float = 0.025  #: packet-engine connection fail-over scan
    arp_refresh_latency: float = 0.010
    monitor_nic: bool = True  #: NIC as a critical resource (paper §3.2)


class RainwallNode(SessionListener):
    """Per-gateway Rainwall agent: load publication and health coupling."""

    def __init__(
        self,
        cluster: "RainwallCluster",
        node_id: str,
    ) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.node = cluster.raincore.node(node_id)
        self.firewall = Firewall(list(cluster.config.rules))
        ensure_composite(self.node).add(self)
        self._publish_timer = None

    # ------------------------------------------------------------------
    def start_publishing(self) -> None:
        self._arm()

    def _arm(self) -> None:
        self._publish_timer = self.node.loop.call_later(
            self.cluster.config.load_publish_interval, self._publish
        )

    def _publish(self) -> None:
        """Share this gateway's load through Raincore (paper §3.2)."""
        if self.node.state is NodeState.DOWN:
            return
        port = self.cluster.engine.gateways[self.node_id]
        self.cluster.shared[self.node_id].set(f"load:{self.node_id}", len(port.flows))
        self._arm()

    # ------------------------------------------------------------------
    def on_state_change(self, old, new) -> None:
        if new is NodeState.DOWN:
            # The forwarding plane dies with the node: its flows blackhole
            # until the cluster detects the failure and repairs them.
            self.cluster.engine.set_gateway_up(self.node_id, False)

    def on_shutdown(self, reason: str) -> None:
        if self._publish_timer is not None:
            self._publish_timer.cancel()


class RainwallCluster:
    """A complete simulated Rainwall deployment.

    Typical benchmark use::

        rw = RainwallCluster(["g1", "g2"], seed=1)
        rw.start()
        rw.run(10.0)
        print(rw.throughput_mbps(since=2.0))
    """

    def __init__(
        self,
        node_ids: list[str],
        *,
        seed: int = 0,
        config: RainwallConfig | None = None,
        raincore_config: RaincoreConfig | None = None,
    ) -> None:
        self.config = config if config is not None else RainwallConfig()
        self.raincore = RaincoreCluster(
            node_ids,
            seed=seed,
            config=(
                raincore_config
                if raincore_config is not None
                else RaincoreConfig.tuned(ring_size=len(node_ids))
            ),
        )
        self.loop = self.raincore.loop
        self.subnet = ArpSubnet(refresh_latency=self.config.arp_refresh_latency)
        self.shared: dict[str, SharedDict] = {}
        self.vip_managers: dict[str, VirtualIPManager] = {}
        self.conntrack: dict[str, ConnectionTable] = {}
        self.agents: dict[str, RainwallNode] = {}
        self.engine = TrafficEngine(
            self.loop,
            self._admit,
            self.config.vips,
            arrival_rate=self.config.arrival_rate,
            flow_size=self.config.flow_size,
            tick=self.config.traffic_tick,
        )
        self.engine.on_complete = self._on_flow_complete
        for node_id in node_ids:
            node = self.raincore.node(node_id)
            shared = SharedDict(node)
            self.shared[node_id] = shared
            self.vip_managers[node_id] = VirtualIPManager(
                node, shared, self.subnet, self.config.vips
            )
            self.conntrack[node_id] = ConnectionTable(
                node, on_assignment=self._apply_assignment
            )
            self.agents[node_id] = RainwallNode(self, node_id)
            self.engine.add_gateway(node_id, self.config.gateway_capacity_bps)
            if self.config.monitor_nic:
                addr = self.raincore.topology.addresses_of(node_id)[0]
                node.monitor.add(
                    CriticalResource(
                        "external-nic",
                        lambda a=addr: self.raincore.topology.nic_up(a),
                        poll_interval=0.050,
                    )
                )
        self._repair_timer = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, form_time: float | None = None) -> None:
        """Form the group, bind VIPs, start traffic and repair loops."""
        self.raincore.start_all(form_time)
        # Let the coordinator's initial VIP assignment propagate and ARP.
        self.loop.run_for(0.5)
        for agent in self.agents.values():
            agent.start_publishing()
        self.engine.start()
        self._arm_repair()

    def run(self, duration: float) -> None:
        self.loop.run_for(duration)

    # ------------------------------------------------------------------
    # the packet engine
    # ------------------------------------------------------------------
    def _live_view(self) -> tuple[str, ...]:
        """The membership as the surviving cluster currently agrees it."""
        live = self.raincore.live_nodes()
        if not live:
            return ()
        leader = min(live, key=lambda n: n.node_id)
        return leader.members

    def _least_loaded(self, candidates: tuple[str, ...]) -> str | None:
        """Pick by the Raincore-shared load table (paper §3.2).

        Deliberately consults only cluster-visible state (the membership
        view and the shared load table), never the simulator's ground truth
        about which gateways are physically up: a connection placed on a
        gateway the cluster has not yet learned is dead simply stalls until
        the 911/membership machinery catches up — that is the fail-over
        latency the paper measures.
        """
        live = self.raincore.live_nodes()
        if not live or not candidates:
            return None
        leader = min(live, key=lambda n: n.node_id)
        table = self.shared[leader.node_id]
        usable = [c for c in candidates if c in self.engine.gateways]
        if not usable:
            return None
        return min(usable, key=lambda c: (table.get(f"load:{c}", 0), c))

    def _admit(self, flow: Flow) -> str | None:
        """Admission + placement of one new connection.

        Returns the chosen gateway, or None for a policy deny.  A flow whose
        VIP is currently unresolvable (owner just died, ARP not yet
        refreshed) is admitted but unplaced: the traffic engine stalls it
        and the repair loop places it once fail-over completes — that stall
        is the client-visible hiccup of paper §3.2.
        """
        entry = self.subnet.resolve(flow.vip)
        if entry is None or not self.engine.gateways.get(entry, None) or not self.engine.gateways[entry].up:
            # Blackholed SYN: admitted, waits for VIP fail-over + retry.
            members = self._live_view()
            if not members:
                return None
            # Policy still applies (any gateway enforces the same policy).
            any_fw = next(iter(self.agents.values())).firewall
            if not any_fw.permits(flow):
                return None
            return "\0stall"  # sentinel: engine keeps the flow unplaced
        if not self.agents[entry].firewall.permits(flow):
            return None
        target = self._least_loaded(self._live_view())
        if target is None:
            return "\0stall"
        # Fast path forwards immediately; the assignment replicates
        # asynchronously through the entry gateway's connection table.
        self.conntrack[entry].record(flow.flow_id, target)
        return target

    def _apply_assignment(self, flow_id: int, gateway: str) -> None:
        """A ConnAssign op naming *this cluster's* ``gateway`` was delivered
        at that gateway: if the flow is stalled (orphan adoption), resume
        it there.  Fresh placements are already forwarding — no-op."""
        flow = self.engine.flows.get(flow_id)
        if flow is None or flow.done or flow.gateway is not None:
            return
        self.engine.reassign_flows([flow_id], lambda f: gateway)

    def _on_flow_complete(self, flow: Flow) -> None:
        """Connection teardown: the handling gateway retires the table entry."""
        gw = flow.gateway
        if gw in self.conntrack and self.raincore.node(gw).is_member:
            self.conntrack[gw].close(flow.flow_id)

    # ------------------------------------------------------------------
    # client retry loop (models TCP SYN retransmission, not the cluster)
    # ------------------------------------------------------------------
    def _arm_repair(self) -> None:
        self._repair_timer = self.loop.call_later(
            self.config.repair_interval, self._retry_clients
        )

    def _retry_clients(self) -> None:
        live = self.raincore.live_nodes()
        if live:
            leader = min(live, key=lambda n: n.node_id)
            table = self.conntrack[leader.node_id]
            for fid in self.engine.stalled_flow_ids():
                home = table.home_of(fid)
                if home is not None:
                    continue  # known to the cluster: adoption will resume it
                # Unknown connection: the client retransmits its SYN, which
                # goes through ordinary admission again.
                flow = self.engine.flows[fid]
                target = self._admit(flow)
                if target and target != "\0stall":
                    self.engine.reassign_flows([fid], lambda f, t=target: t)
        self._arm_repair()

    # ------------------------------------------------------------------
    # fault injection & reporting
    # ------------------------------------------------------------------
    def unplug_gateway(self, node_id: str) -> str:
        """The paper's fail-over experiment: yank one gateway's cable."""
        return self.raincore.faults.unplug_cable(node_id)

    def crash_gateway(self, node_id: str) -> None:
        self.raincore.faults.crash_node(node_id)
        self.engine.set_gateway_up(node_id, False)

    def throughput_mbps(self, since: float = 0.0, until: float | None = None) -> float:
        return self.engine.throughput_bps(since, until) / 1e6

    def failover_gap(self) -> float:
        """Longest client-visible traffic hiccup in seconds (paper: <2 s)."""
        return self.engine.longest_gap()

    def rainwall_cpu_percent(self, duration: float, model: CpuModel | None = None) -> dict[str, float]:
        """Per-gateway CPU share spent on Raincore/Rainwall coordination.

        The paper reports "Rainwall CPU usage is below 1%" throughout the
        Fig. 3 benchmark; this derives the same figure from the task-switch
        and packet accounting instead of asserting it.
        """
        model = model if model is not None else CpuModel()
        return {
            node_id: 100.0 * model.gc_cpu_seconds(
                self.raincore.stats.for_node(node_id)
            ) / duration
            for node_id in self.agents
        }
