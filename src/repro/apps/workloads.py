"""Workload models for the traffic engine.

The Fig. 3 benchmark uses fixed-size downloads for calibration clarity, but
real web traffic (the paper's workload: HTTP clients against Apache
servers) is heavy-tailed.  These factories produce ``flow_size`` callables
for :class:`~repro.apps.traffic.TrafficEngine`, all driven by the
simulation's seeded RNG so runs stay reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Callable

__all__ = ["constant", "pareto", "lognormal", "bimodal"]

SizeFn = Callable[[], float]


def constant(size: float) -> SizeFn:
    """Every flow transfers exactly ``size`` bytes."""
    if size <= 0:
        raise ValueError("size must be positive")
    return lambda: float(size)


def pareto(rng: random.Random, mean: float, alpha: float = 1.5) -> SizeFn:
    """Bounded-mean Pareto sizes — the classic web-object model.

    ``alpha`` is the tail index (1 < alpha: finite mean; web measurements
    cluster around 1.2–1.6).  ``mean`` fixes the scale so the expected size
    is ``mean``: x_min = mean · (alpha − 1) / alpha.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 for a finite mean")
    x_min = mean * (alpha - 1.0) / alpha

    def draw() -> float:
        # Inverse-CDF sampling: x = x_min / U^(1/alpha).
        u = rng.random()
        while u == 0.0:  # pragma: no cover - probability ~0
            u = rng.random()
        return x_min / (u ** (1.0 / alpha))

    return draw


def lognormal(rng: random.Random, mean: float, sigma: float = 1.0) -> SizeFn:
    """Log-normal sizes with the given (linear-scale) mean."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    mu = math.log(mean) - sigma * sigma / 2.0

    return lambda: rng.lognormvariate(mu, sigma)


def bimodal(
    rng: random.Random,
    small: float,
    large: float,
    p_large: float = 0.05,
) -> SizeFn:
    """Mice-and-elephants: mostly ``small`` flows, occasionally ``large``.

    The standard stress model for per-connection load balancers — a few
    elephants can skew a gateway, which is exactly what the shared load
    table exists to counteract.
    """
    if small <= 0 or large <= 0:
        raise ValueError("sizes must be positive")
    if not 0.0 <= p_large <= 1.0:
        raise ValueError("p_large must be a probability")

    def draw() -> float:
        return float(large if rng.random() < p_large else small)

    return draw
