"""Clustered stateful NAT — sharing *arbitrary application state* (paper §1).

    "This module can also be used to share arbitrary application state, to
    facilitate transparent fail-over of traffic from a failed node to a
    healthy node, without the clients or the servers aware of the failures."

A NAT gateway is the canonical stateful networking element: every
connection owns a translation entry (client endpoint ↔ public port), and
the entry must exist wherever the connection's packets might be forwarded.
Clustering NAT therefore needs two hard guarantees the Session Service
provides directly:

* **cluster-unique allocation** — two gateways must never hand out the same
  public port.  Allocation requests are multicast; every replica applies
  them in the token's total order against an identical free-port structure,
  so the n-th allocation gets the same port everywhere — no locking, no
  coordinator.
* **translation continuity** — because the whole table is replicated, a
  connection adopted by a surviving gateway after a failure keeps its
  public port; the far end never notices (the paper's transparent
  fail-over).

State transfer (join-time snapshots, anti-entropy, merge reconciliation)
follows the Data Service replica discipline (:mod:`repro.data.replica`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.session import RaincoreNode
from repro.data.replica import ReplicaBase

__all__ = ["NatMapping", "NatOp", "NatSnapshot", "NatTable"]


@dataclass(frozen=True)
class NatMapping:
    """One replicated translation entry."""

    flow_id: int
    client: str  #: private endpoint ("10.0.0.7:4312")
    public_port: int
    gateway: str  #: gateway that requested the mapping


@dataclass(frozen=True)
class NatOp:
    """One replicated NAT-table operation."""

    kind: str  # "alloc" | "release"
    flow_id: int
    client: str
    requester: str

    def wire_size(self) -> int:
        return 24 + len(self.client)


@dataclass(frozen=True)
class NatSnapshot:
    """Join-time state transfer: the whole allocator state at one position
    in the total order (materialized at token attach)."""

    mappings: tuple[NatMapping, ...]
    next_fresh: int
    freed: tuple[int, ...]

    def wire_size(self) -> int:
        return 16 + 16 * len(self.mappings) + 4 * len(self.freed)


class NatTable(ReplicaBase):
    """Per-gateway replica of the cluster's NAT translation table.

    All replicas must be constructed with the same ``port_range``.  Ports
    are assigned lowest-free-first from a deterministic structure, so the
    same total order of ops yields the same table at every gateway.
    """

    SERVICE = "nat-table"

    def __init__(
        self,
        node: RaincoreNode,
        port_range: tuple[int, int] = (30000, 30999),
    ) -> None:
        lo, hi = port_range
        if lo > hi:
            raise ValueError("empty port range")
        self._next_fresh = lo
        self._limit = hi
        self._freed: deque[int] = deque()  # released ports, FIFO reuse
        self._by_flow: dict[int, NatMapping] = {}
        self._by_port: dict[int, int] = {}  # public port -> flow id
        self._callbacks: dict[int, Callable[[NatMapping | None], None]] = {}
        self.allocations = 0
        self.failures = 0  #: pool-exhaustion events observed
        super().__init__(node)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def allocate(
        self,
        flow_id: int,
        client: str,
        on_mapped: Callable[[NatMapping | None], None] | None = None,
    ) -> None:
        """Request a public port for ``flow_id``.

        ``on_mapped`` fires on this gateway when the allocation op is
        delivered: with the :class:`NatMapping` on success, or ``None`` if
        the pool is exhausted at the op's position in the total order.
        """
        if on_mapped is not None:
            self._callbacks[flow_id] = on_mapped
        self.node.multicast(NatOp("alloc", flow_id, client, self.node.node_id))

    def release(self, flow_id: int) -> None:
        """Return ``flow_id``'s port to the pool (connection teardown)."""
        self.node.multicast(NatOp("release", flow_id, "", self.node.node_id))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def translation(self, flow_id: int) -> NatMapping | None:
        return self._by_flow.get(flow_id)

    def flow_on_port(self, public_port: int) -> int | None:
        return self._by_port.get(public_port)

    def size(self) -> int:
        return len(self._by_flow)

    def available(self) -> int:
        fresh = max(0, self._limit - self._next_fresh + 1)
        return fresh + len(self._freed)

    def snapshot(self) -> dict[int, int]:
        """flow id → public port (for replica-agreement checks)."""
        return {fid: m.public_port for fid, m in self._by_flow.items()}

    # ------------------------------------------------------------------
    # ReplicaBase hooks
    # ------------------------------------------------------------------
    def _is_op(self, payload: Any) -> bool:
        return isinstance(payload, NatOp)

    def _is_snapshot(self, payload: Any) -> bool:
        return isinstance(payload, NatSnapshot)

    def _apply_op(self, op: NatOp) -> None:
        if op.kind == "alloc":
            self._apply_alloc(op)
        elif op.kind == "release":
            self._apply_release(op)

    def _snapshot_payload(self) -> NatSnapshot:
        return NatSnapshot(
            tuple(self._by_flow.values()),
            self._next_fresh,
            tuple(self._freed),
        )

    def _install_snapshot(self, snap: NatSnapshot) -> None:
        self._by_flow = {m.flow_id: m for m in snap.mappings}
        self._by_port = {m.public_port: m.flow_id for m in snap.mappings}
        self._next_fresh = snap.next_fresh
        self._freed = deque(snap.freed)

    # ------------------------------------------------------------------
    # allocator state machine
    # ------------------------------------------------------------------
    def _apply_alloc(self, op: NatOp) -> None:
        if op.flow_id in self._by_flow:
            mapping = self._by_flow[op.flow_id]  # duplicate alloc: idempotent
        else:
            port = self._take_port()
            if port is None:
                self.failures += 1
                if op.requester == self.node.node_id:
                    callback = self._callbacks.pop(op.flow_id, None)
                    if callback is not None:
                        callback(None)
                return
            mapping = NatMapping(op.flow_id, op.client, port, op.requester)
            self._by_flow[op.flow_id] = mapping
            self._by_port[port] = op.flow_id
            self.allocations += 1
        if op.requester == self.node.node_id:
            callback = self._callbacks.pop(op.flow_id, None)
            if callback is not None:
                callback(mapping)

    def _apply_release(self, op: NatOp) -> None:
        mapping = self._by_flow.pop(op.flow_id, None)
        if mapping is None:
            return
        self._by_port.pop(mapping.public_port, None)
        self._freed.append(mapping.public_port)

    def _take_port(self) -> int | None:
        if self._freed:
            return self._freed.popleft()
        if self._next_fresh <= self._limit:
            port = self._next_fresh
            self._next_fresh += 1
            return port
        return None
