"""rainspec: the declarative protocol specification (pure data).

This module is the *source of truth* for the Raincore control-plane
protocol: which message kinds exist, which dispatcher tier delivers them,
which handler implements each exchange, which lifecycle states guard it,
which states it may transition a node into, which message kinds it may
mint, and — for the exchanges the model checker executes — the ordered
guard→effect rules of the paper's token / 911 / TBM machines.

Three consumers, three contracts:

* **raincheck RC5xx** (:mod:`repro.spec.extract`) recovers the *implemented*
  machine from the handler bodies in ``core/session.py``,
  ``core/recovery.py``, ``core/merge.py``, ``core/opengroup.py`` and
  ``data/replica.py`` by AST analysis and diffs it against this table.
  Drift in either direction — an unspecified dispatch arm, a spec entry no
  code implements, a transition/emit/guard the other side lacks — fails CI.
* **The model checker** (:mod:`repro.spec.model`) interprets the ordered
  :attr:`Exchange.rules` of the token/911/TBM exchanges over an abstract
  cluster with message loss, duplication and reordering, and verifies the
  paper's safety properties exhaustively for small N.
* **``repro spec render``** (:mod:`repro.spec.render`) prints the whole
  table as byte-stable markdown (pinned by a golden test and embedded in
  docs/PROTOCOL.md §9).

Everything here is a frozen dataclass of strings: no behaviour, no I/O,
no imports from the protocol implementation (the spec must be loadable to
judge a broken tree).  Kind names are matched against the sorted registry
views (:func:`repro.transport.messages.registered_kinds`) by the property
tests; state names must be ``NodeState`` member names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "GUARDS",
    "EFFECTS",
    "LIFECYCLE",
    "PROTOCOL_SPEC",
    "SPEC_MODULES",
    "Exchange",
    "ModelRule",
    "exchange",
    "exchanges_by_name",
    "lifecycle_pairs",
    "spec_states",
    "spec_kinds",
    "validate_spec",
]

#: Source modules the conformance extractor analyzes (display-path
#: suffixes).  Adding an exchange whose handler lives elsewhere requires
#: adding its module here — the extractor errors on unresolvable handlers.
SPEC_MODULES: tuple[str, ...] = (
    "repro/core/session.py",
    "repro/core/recovery.py",
    "repro/core/merge.py",
    "repro/core/opengroup.py",
    "repro/data/replica.py",
)

#: Node-lifecycle transition relation (paper §2.2–§2.3), as value pairs.
#: This must stay equal to ``repro.core.states.VALID_TRANSITIONS`` — the
#: property test and ``repro spec check`` both assert the equality, and
#: the obs contract rule ``state-transitions`` enforces it live against
#: every ``node.state`` probe a run emits.
LIFECYCLE: tuple[tuple[str, str], ...] = (
    ("JOINING", "EATING"),
    ("JOINING", "JOINING"),
    ("JOINING", "STARVING"),
    ("JOINING", "DOWN"),
    ("HUNGRY", "EATING"),
    ("HUNGRY", "STARVING"),
    ("HUNGRY", "DOWN"),
    ("EATING", "HUNGRY"),
    ("EATING", "DOWN"),
    ("STARVING", "EATING"),
    ("STARVING", "HUNGRY"),
    ("STARVING", "JOINING"),
    ("STARVING", "DOWN"),
    ("DOWN", "JOINING"),
)

#: Guard vocabulary of the model rules.  A guard is evaluated by the model
#: checker against the abstract receiver state; within one exchange the
#: rules are tried in order and the first true guard fires.  ``ok`` is the
#: unconditional fall-through.
GUARDS: frozenset[str] = frozenset(
    {
        "ok",
        "tbm",
        "foreign_lineage",
        "stale_seq",
        "not_in_ring",
        "newer_seen",
        "hungry",
        "sender_not_member",
        "sender_member",
        "sender_quarantined",
        "have_token",
        "newer_copy",
        "deny",
        "all_join_pending",
        "higher_group",
        "already_holding",
        "not_member",
    }
)

#: Effect vocabulary of the model rules.  The checker implements the
#: operational semantics of each effect; the spec only binds guards to
#: effects, so a broken spec fixture (wrong binding) changes the explored
#: behaviour and trips a safety property.
EFFECTS: frozenset[str] = frozenset(
    {
        "accept",
        "drop",
        "divert",
        "forward",
        "repair",
        "start_round",
        "reply_join_pending",
        "reply_deny_token",
        "reply_deny_newer",
        "reply_grant",
        "back_to_hungry",
        "regenerate",
        "to_joining",
        "hold_tbm",
        "refuse_tbm",
        "merge",
        "initiate_merge",
        "queue_merge",
        "apply_joins",
        "quarantine",
    }
)

#: One model-checker rule: ``(guard, effect)``, evaluated in order.
ModelRule = tuple[str, str]


@dataclass(frozen=True)
class Exchange:
    """One protocol exchange: a message kind or timer and its handler.

    The extractable facts (``guard_states``, ``transitions``, ``emits``,
    ``delegates``) describe the handler's *call closure*: every helper it
    reaches within the spec modules, stopping at — and recording — other
    exchanges' handlers.  ``transitions`` are the ``NodeState`` names the
    closure passes to ``_transition``; ``emits`` the registered message
    kinds it constructs; ``guard_states`` the ``NodeState`` names its
    guard comparisons mention.  ``rules`` exist only on the exchanges the
    model checker executes.
    """

    name: str
    dispatcher: str  #: "transport" | "stream" | "timer" | "internal" | "lifecycle" | "view"
    handler: str  #: "ClassName.method" within :data:`SPEC_MODULES`
    kind: str | None = None  #: triggering message kind (dispatched tiers)
    dispatched_by: str | None = None  #: dispatch function owning the arm
    guard_states: tuple[str, ...] = ()
    transitions: tuple[str, ...] = ()
    emits: tuple[str, ...] = ()
    delegates: tuple[str, ...] = ()
    rules: tuple[ModelRule, ...] = ()
    doc: str = ""


def exchange(
    name: str,
    dispatcher: str,
    handler: str,
    *,
    kind: str | None = None,
    dispatched_by: str | None = None,
    guard_states: tuple[str, ...] = (),
    transitions: tuple[str, ...] = (),
    emits: tuple[str, ...] = (),
    delegates: tuple[str, ...] = (),
    rules: tuple[ModelRule, ...] = (),
    doc: str = "",
) -> Exchange:
    """Build an :class:`Exchange` with sorted fact tuples (determinism)."""
    return Exchange(
        name=name,
        dispatcher=dispatcher,
        handler=handler,
        kind=kind,
        dispatched_by=dispatched_by,
        guard_states=tuple(sorted(guard_states)),
        transitions=tuple(sorted(transitions)),
        emits=tuple(sorted(emits)),
        delegates=tuple(sorted(delegates)),
        rules=tuple(rules),
        doc=doc,
    )


#: The protocol specification.  Order is the authored narrative order;
#: every renderer sorts by (dispatcher, name) so output never depends on
#: edits here.
PROTOCOL_SPEC: tuple[Exchange, ...] = (
    # ------------------------------------------------------------------
    # transport tier: session messages dispatched by _receive
    # ------------------------------------------------------------------
    exchange(
        "token-accept",
        "transport",
        "RaincoreNode._accept_token",
        kind="Token",
        dispatched_by="RaincoreNode._receive",
        guard_states=("DOWN", "JOINING"),
        transitions=("EATING",),
        delegates=(
            "merge-complete",
            "tbm-hold",
            "token-depart",
            "token-divert",
            "token-visit",
        ),
        rules=(
            ("tbm", "hold_tbm"),
            ("foreign_lineage", "divert"),
            ("stale_seq", "drop"),
            ("not_in_ring", "drop"),
            ("ok", "accept"),
        ),
        doc="Token acceptance guard: lineage continuity then seq freshness "
        "(paper §2.2, session.py module docstring).",
    ),
    exchange(
        "911-request",
        "transport",
        "RecoveryProtocol.handle_911",
        kind="NineOneOne",
        dispatched_by="RaincoreNode._receive",
        guard_states=("EATING",),
        emits=("NineOneOneReply",),
        rules=(
            ("sender_not_member", "reply_join_pending"),
            ("have_token", "reply_deny_token"),
            ("newer_copy", "reply_deny_newer"),
            ("ok", "reply_grant"),
        ),
        doc="Grant rule of the 911 protocol (paper §2.3): members vote on a "
        "regeneration; non-members are queued as joiners.",
    ),
    exchange(
        "911-reply",
        "transport",
        "RecoveryProtocol.handle_reply",
        kind="NineOneOneReply",
        dispatched_by="RaincoreNode._receive",
        guard_states=("HUNGRY", "STARVING"),
        transitions=("HUNGRY", "JOINING"),
        emits=("Token",),
        delegates=("join-retry", "timeout-starve", "token-accept"),
        rules=(
            ("deny", "back_to_hungry"),
            ("all_join_pending", "to_joining"),
            ("ok", "regenerate"),
        ),
        doc="STARVING round bookkeeping: any deny aborts; unanimous "
        "JOIN_PENDING means we were removed; unanimous grant regenerates "
        "from the local copy.",
    ),
    exchange(
        "bodyodor",
        "transport",
        "MergeProtocol.handle_bodyodor",
        kind="BodyOdor",
        dispatched_by="RaincoreNode._receive",
        guard_states=("DOWN", "JOINING"),
        rules=(
            ("not_member", "drop"),
            ("sender_member", "drop"),
            ("sender_quarantined", "drop"),
            ("higher_group", "drop"),
            ("ok", "queue_merge"),
        ),
        doc="Discovery beacon receive (paper §2.4): lower group id joins "
        "higher; quarantined senders wait out the backoff.",
    ),
    exchange(
        "open-group",
        "transport",
        "RaincoreNode._handle_open_group",
        kind="OpenGroupMessage",
        dispatched_by="RaincoreNode._receive",
        guard_states=("DOWN", "JOINING"),
        emits=("OpenGroupAck",),
        doc="Open group injection (paper §2.6): a member multicasts an "
        "outside node's payload and acks the client.",
    ),
    exchange(
        "open-group-ack",
        "transport",
        "OpenGroupClient._receive",
        kind="OpenGroupAck",
        dispatched_by="OpenGroupClient._receive",
        doc="Client side of open group: acceptance ends the retry loop.",
    ),
    # ------------------------------------------------------------------
    # internal exchanges (reached only by delegation)
    # ------------------------------------------------------------------
    exchange(
        "token-divert",
        "internal",
        "RaincoreNode._divert_foreign_token",
        doc="Foreign-lineage token routed around this node (acceptance "
        "guard layer 1); both forks then partition cleanly.",
    ),
    exchange(
        "token-visit",
        "internal",
        "RaincoreNode._process_visit",
        delegates=("join-apply", "token-forward"),
        doc="The EATING pipeline of one token visit: membership sync, "
        "queued joins, multicast, mutex, then the hold timer.",
    ),
    exchange(
        "token-depart",
        "internal",
        "RaincoreNode._depart_with_token",
        transitions=("DOWN",),
        doc="Voluntary leave while EATING: hand the ring over, stop.",
    ),
    exchange(
        "fd-repair",
        "internal",
        "RaincoreNode._on_forward_result",
        guard_states=("DOWN",),
        delegates=("token-accept",),
        rules=(("newer_seen", "drop"), ("ok", "repair")),
        doc="Failure-on-delivery (paper §2.2): remove the dead neighbour "
        "and resume from the local copy of exactly what was sent.",
    ),
    exchange(
        "quarantine",
        "internal",
        "RaincoreNode.quarantine_peer",
        rules=(("ok", "quarantine"),),
        doc="Resync degradation ladder terminal rung: evict the peer on "
        "the next visit and ignore its joins/beacons until backoff lifts.",
    ),
    exchange(
        "join-apply",
        "internal",
        "RecoveryProtocol.on_token",
        rules=(("ok", "apply_joins"),),
        doc="Token-visit hook: insert queued joiners after us; evict "
        "quarantined peers on the same visit.",
    ),
    exchange(
        "911-round",
        "internal",
        "RecoveryProtocol._start_round",
        guard_states=("STARVING",),
        transitions=("JOINING",),
        emits=("NineOneOne", "Token"),
        delegates=("join-retry", "token-accept"),
        doc="Fan a 911 out to every member of the local view; "
        "failure-on-delivery excludes a peer from vote and regenerated "
        "membership.",
    ),
    exchange(
        "merge-initiate",
        "internal",
        "MergeProtocol.maybe_initiate",
        rules=(("ok", "initiate_merge"),),
        doc="Initiating side of the TBM merge: add the discovered peer to "
        "the ring, set TBM, forward the token straight to it.",
    ),
    exchange(
        "tbm-hold",
        "internal",
        "MergeProtocol.handle_tbm",
        guard_states=("EATING",),
        delegates=("merge-complete",),
        rules=(("already_holding", "refuse_tbm"), ("ok", "hold_tbm")),
        doc="Joining side: hold the TBM token until our own token arrives; "
        "a second TBM is refused so the second initiator's ring routes "
        "around us.",
    ),
    exchange(
        "merge-complete",
        "internal",
        "MergeProtocol.merge_with_own",
        emits=("Token",),
        rules=(("ok", "merge"),),
        doc="Combine the held TBM token with our own: splice rings, "
        "concatenate queues, mint a merged lineage with both parents in "
        "the ancestry.",
    ),
    # ------------------------------------------------------------------
    # timer-driven exchanges
    # ------------------------------------------------------------------
    exchange(
        "token-forward",
        "timer",
        "RaincoreNode._forward_token",
        guard_states=("EATING", "HUNGRY"),
        transitions=("HUNGRY",),
        delegates=("fd-repair", "merge-initiate", "timeout-starve", "token-accept"),
        rules=(("ok", "forward"),),
        doc="Hop-interval expiry: seq+1, snapshot a local copy, send to "
        "the ring successor (or the merge target), arm the failure "
        "detector.",
    ),
    exchange(
        "timeout-starve",
        "timer",
        "RecoveryProtocol.on_hungry_timeout",
        guard_states=("HUNGRY",),
        transitions=("STARVING",),
        delegates=("911-round",),
        rules=(("hungry", "start_round"),),
        doc="HUNGRY timeout: suspect token loss, enter STARVING, start a "
        "911 round.",
    ),
    exchange(
        "join-retry",
        "timer",
        "RecoveryProtocol._on_join_timeout",
        guard_states=("JOINING",),
        transitions=("STARVING",),
        emits=("NineOneOne",),
        delegates=("911-round",),
        doc="JOINING retry / deadlock escalation: keep knocking, or — "
        "still holding a token copy after repeated futility — escalate "
        "to a 911 regeneration round.",
    ),
    exchange(
        "merge-beacon",
        "timer",
        "MergeProtocol._beacon",
        guard_states=("DOWN", "JOINING"),
        emits=("BodyOdor",),
        doc="Periodic BODYODOR discovery beacons to eligible non-members.",
    ),
    # ------------------------------------------------------------------
    # stream tier: payloads dispatched off the agreed-ordered multicast
    # ------------------------------------------------------------------
    exchange(
        "resync-snapshot",
        "stream",
        "ReplicaBase._handle_snapshot",
        kind="ResyncSnapshot",
        dispatched_by="ReplicaBase.on_deliver",
        guard_states=("DOWN",),
        emits=("ResyncAck",),
        doc="Continuation-point state transfer installed by every member; "
        "reconciles split-brain histories (docs/RESYNC.md ladder rung 2).",
    ),
    exchange(
        "resync-delta",
        "stream",
        "ReplicaBase._handle_delta",
        kind="ResyncDelta",
        dispatched_by="ReplicaBase.on_deliver",
        guard_states=("DOWN",),
        emits=("ResyncAck",),
        delegates=("resync-antientropy",),
        doc="Certified O(window) catch-up for an in-window peer (ladder "
        "rung 1); a divergent base re-enters the unsynced protocol.",
    ),
    exchange(
        "resync-ack",
        "stream",
        "ReplicaBase._handle_ack",
        kind="ResyncAck",
        dispatched_by="ReplicaBase.on_deliver",
        delegates=("resync-serve",),
        doc="Certified positions drive deterministic pruning and growth "
        "coordination.",
    ),
    exchange(
        "resync-request",
        "stream",
        "ReplicaBase._handle_sync_request",
        kind="SyncRequest",
        dispatched_by="ReplicaBase.on_deliver",
        delegates=("resync-serve",),
        doc="An unsynced replica asking for catch-up; every synced member "
        "answers along the ladder.",
    ),
    exchange(
        "resync-serve",
        "internal",
        "ReplicaBase._serve_peer",
        guard_states=("DOWN",),
        emits=("ResyncDelta", "ResyncSnapshot"),
        delegates=("quarantine",),
        doc="One ladder rung for one lagging peer: certified delta → "
        "continuation-point snapshot → quarantine.",
    ),
    exchange(
        "resync-growth",
        "view",
        "ReplicaBase.on_view_change",
        guard_states=("DOWN",),
        emits=("ResyncAck",),
        delegates=("resync-antientropy", "resync-growth-tick"),
        doc="View growth: advertise certified positions; the lowest-id "
        "survivor becomes the joiners' resync coordinator.",
    ),
    exchange(
        "resync-growth-tick",
        "timer",
        "ReplicaBase._growth_tick",
        guard_states=("DOWN", "JOINING"),
        emits=("ResyncSnapshot",),
        doc="Growth deferral expired with unresolved joiners: snapshot "
        "fallback (never toward a peer that knows strictly more).",
    ),
    exchange(
        "resync-antientropy",
        "timer",
        "ReplicaBase._sync_tick",
        guard_states=("DOWN", "JOINING"),
        emits=("ResyncSnapshot", "SyncRequest"),
        doc="Unsynced replicas poll with certified-position SyncRequests; "
        "a fruitless minimum-id member self-declares (FINDINGS.md §4).",
    ),
    exchange(
        "resync-amnesia",
        "lifecycle",
        "ReplicaBase.on_state_change",
        guard_states=("DOWN", "JOINING"),
        doc="A restart is amnesia: drop state trust, log and chain; "
        "re-enter the unsynced protocol.",
    ),
)


def exchanges_by_name() -> dict[str, Exchange]:
    """Name → exchange mapping (validated unique by :func:`validate_spec`)."""
    return {ex.name: ex for ex in PROTOCOL_SPEC}


def lifecycle_pairs() -> frozenset[tuple[str, str]]:
    """The allowed lifecycle transitions as a set of value-name pairs."""
    return frozenset(LIFECYCLE)


def spec_states() -> frozenset[str]:
    """Every state name the spec mentions anywhere."""
    names = {s for pair in LIFECYCLE for s in pair}
    for ex in PROTOCOL_SPEC:
        names.update(ex.guard_states)
        names.update(ex.transitions)
    return frozenset(names)


def spec_kinds() -> frozenset[str]:
    """Every message kind the spec mentions (dispatch kinds and emits)."""
    kinds: set[str] = set()
    for ex in PROTOCOL_SPEC:
        if ex.kind is not None:
            kinds.add(ex.kind)
        kinds.update(ex.emits)
    return frozenset(kinds)


def validate_spec(spec: tuple[Exchange, ...] = PROTOCOL_SPEC) -> list[str]:
    """Structural self-checks; returns a sorted list of problem strings.

    Kept import-light (no protocol imports) so a broken tree can still
    validate its spec.  Cross-checks against the live registries and
    ``NodeState`` live in the property tests and ``repro spec check``.
    """
    problems: list[str] = []
    seen: set[str] = set()
    names = {ex.name for ex in spec}
    lifecycle_states = {s for pair in LIFECYCLE for s in pair}
    for ex in spec:
        if ex.name in seen:
            problems.append(f"duplicate exchange name {ex.name!r}")
        seen.add(ex.name)
        if "." not in ex.handler:
            problems.append(f"{ex.name}: handler {ex.handler!r} is not Class.method")
        if (ex.kind is None) != (ex.dispatched_by is None):
            problems.append(
                f"{ex.name}: kind and dispatched_by must be set together"
            )
        for state in (*ex.guard_states, *ex.transitions):
            if state not in lifecycle_states:
                problems.append(
                    f"{ex.name}: state {state!r} not in the lifecycle table"
                )
        for delegate in ex.delegates:
            if delegate not in names:
                problems.append(f"{ex.name}: unknown delegate {delegate!r}")
        for guard, effect in ex.rules:
            if guard not in GUARDS:
                problems.append(f"{ex.name}: unknown guard {guard!r}")
            if effect not in EFFECTS:
                problems.append(f"{ex.name}: unknown effect {effect!r}")
        if ex.rules:
            guards = [g for g, _ in ex.rules]
            if guards.count("ok") > 1 or ("ok" in guards and guards[-1] != "ok"):
                problems.append(
                    f"{ex.name}: 'ok' must be the single final fall-through"
                )
    return sorted(problems)
