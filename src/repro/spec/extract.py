"""rainspec conformance extractor: recover the implemented machine by AST.

Given the parsed sources of the protocol modules (:data:`SPEC_MODULES`),
this module rebuilds the *implemented* protocol machine — dispatch arms,
and per-exchange guard states, lifecycle transitions, minted message kinds
and exchange-to-exchange delegation — and diffs it against the declarative
spec in :mod:`repro.spec.protocol`.  The diff is the RC5xx rule family:
drift in either direction (code the spec does not know, spec the code does
not implement) is a finding, so the spec and the handlers can only move
together.

Extraction model
----------------
Every spec exchange names a handler ``Class.method``.  The extractor
computes the handler's **call closure**: the helper methods it reaches
within the spec modules, following ``self.X`` / ``node.X`` / ``recovery.X``
/ ``merge.X`` receivers (the component wiring is part of the architecture
and is encoded in :data:`RECEIVERS`), and *stopping* at any method that is
itself a spec handler — recorded as a delegation edge instead.  Timer and
callback wiring counts: a bare method reference passed to ``call_later``
or captured by a lambda is an edge like a direct call.  Within the
closure it collects:

* ``transitions`` — ``NodeState`` names passed to ``_transition``;
* ``emits`` — registered message kinds constructed (``Kind(...)``);
* ``guard_states`` — ``NodeState`` names referenced inside comparisons,
  including those inside properties the closure reads (``is_member``,
  ``is_eating``);
* ``delegates`` — other exchanges whose handlers the closure reaches.

Everything is AST-only (no imports of the analyzed code), deterministic
(sorted traversal, sorted outputs), and intentionally dumb: receivers not
in :data:`RECEIVERS` are skipped, so cross-layer calls (transport, event
loop, probes) never leak facts into an exchange.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.spec.protocol import PROTOCOL_SPEC, Exchange

__all__ = [
    "CLASS_MODULES",
    "RECEIVERS",
    "Arm",
    "DriftFinding",
    "ExtractedExchange",
    "Extraction",
    "RegisteredKind",
    "diff_against_spec",
    "extract_project",
]

#: Protocol class → module path suffix it must live in.  Also the gate for
#: partial projects: findings about a class are suppressed when its module
#: is absent from the linted tree (e.g. linting a single subpackage).
CLASS_MODULES: dict[str, str] = {
    "RaincoreNode": "repro/core/session.py",
    "RecoveryProtocol": "repro/core/recovery.py",
    "MergeProtocol": "repro/core/merge.py",
    "OpenGroupClient": "repro/core/opengroup.py",
    "ReplicaBase": "repro/data/replica.py",
}

#: Receiver-name → class resolution for attribute chains.  ``self`` maps
#: to the enclosing class; these cover the fixed component wiring
#: (``self.node``, ``self.recovery``, ``self.merge``, and the ``node =
#: self.node`` local idiom).  Unknown receivers are skipped on purpose.
RECEIVERS: dict[str, str] = {
    "node": "RaincoreNode",
    "recovery": "RecoveryProtocol",
    "merge": "MergeProtocol",
}

_TIERS = {"session": "session_message", "stream": "stream_message"}


@dataclass(frozen=True)
class RegisteredKind:
    """One ``@session_message`` / ``@stream_message`` class found by AST."""

    kind: str
    tier: str  #: "session" | "stream"
    path: str
    line: int


@dataclass(frozen=True)
class Arm:
    """One ``isinstance`` dispatch arm found in a dispatcher function."""

    dispatcher: str  #: "Class.method"
    kind: str
    target: str  #: handler method name the arm routes to
    path: str
    line: int


@dataclass
class ExtractedExchange:
    """The implemented facts recovered for one spec exchange."""

    name: str
    handler: str
    found: bool = False
    path: str = ""
    line: int = 0
    guard_states: set[str] = field(default_factory=set)
    transitions: set[str] = field(default_factory=set)
    emits: set[str] = field(default_factory=set)
    delegates: set[str] = field(default_factory=set)


@dataclass
class Extraction:
    """Everything the extractor recovered from one project."""

    modules_present: frozenset[str]
    registered: dict[str, RegisteredKind]
    arms: list[Arm]
    exchanges: dict[str, ExtractedExchange]


@dataclass(frozen=True)
class DriftFinding:
    """One spec↔code drift, attributed to a source location."""

    rule: str
    path: str
    line: int
    message: str


# ----------------------------------------------------------------------
# low-level AST helpers
# ----------------------------------------------------------------------
def _decorator_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``self.node.multicast`` → ``["self", "node", "multicast"]``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _resolve_method(node: ast.expr, current_class: str) -> tuple[str, str] | None:
    """Resolve an attribute chain to ``(owner_class, method_name)``."""
    chain = _attr_chain(node)
    if chain is None or len(chain) < 2:
        return None
    receiver, meth = chain[-2], chain[-1]
    if receiver == "self":
        # Only a direct ``self.meth``: chains like ``self.loop.call_later``
        # have receiver "loop" and fall through to RECEIVERS below.
        if len(chain) == 2:
            return (current_class, meth)
        return None
    owner = RECEIVERS.get(receiver)
    if owner is None:
        return None
    return (owner, meth)


def _nodestate_name(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "NodeState"
    ):
        return node.attr
    return None


def _isinstance_kinds(test: ast.expr, known_kinds: frozenset[str]) -> list[str]:
    """Registered kind names checked by ``isinstance`` calls in ``test``."""
    kinds: list[str] = []
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            classinfo = node.args[1]
            candidates = (
                list(classinfo.elts)
                if isinstance(classinfo, ast.Tuple)
                else [classinfo]
            )
            for cand in candidates:
                name = _decorator_name(cand)
                if name is not None and name in known_kinds:
                    kinds.append(name)
    return kinds


# ----------------------------------------------------------------------
# project indexing
# ----------------------------------------------------------------------
def _collect_registered(
    files: Sequence[tuple[str, ast.Module]]
) -> dict[str, RegisteredKind]:
    registered: dict[str, RegisteredKind] = {}
    for path, tree in files:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for deco in node.decorator_list:
                name = _decorator_name(deco)
                for tier, deco_name in sorted(_TIERS.items()):
                    if name == deco_name:
                        registered[node.name] = RegisteredKind(
                            node.name, tier, path, node.lineno
                        )
    return registered


def _index_methods(
    files: Sequence[tuple[str, ast.Module]]
) -> tuple[dict[tuple[str, str], tuple[ast.FunctionDef, str]], frozenset[str]]:
    """(class, method) → (def, path) for the protocol classes; plus the
    set of spec-module suffixes actually present in the project."""
    index: dict[tuple[str, str], tuple[ast.FunctionDef, str]] = {}
    present: set[str] = set()
    for path, tree in files:
        for cls_name, suffix in sorted(CLASS_MODULES.items()):
            if not path.endswith(suffix):
                continue
            present.add(suffix)
            for node in tree.body:
                if isinstance(node, ast.ClassDef) and node.name == cls_name:
                    for item in node.body:
                        if isinstance(item, ast.FunctionDef):
                            index[(cls_name, item.name)] = (item, path)
    return index, frozenset(present)


# ----------------------------------------------------------------------
# closure scan
# ----------------------------------------------------------------------
def _scan_closure(
    entry: tuple[str, str],
    index: dict[tuple[str, str], tuple[ast.FunctionDef, str]],
    entry_map: dict[tuple[str, str], str],
    kind_names: frozenset[str],
    out: ExtractedExchange,
) -> None:
    """BFS the call closure of ``entry``, accumulating facts into ``out``."""
    queue: list[tuple[str, str]] = [entry]
    visited: set[tuple[str, str]] = set()
    while queue:
        current = queue.pop(0)
        if current in visited:
            continue
        visited.add(current)
        found = index.get(current)
        if found is None:
            continue
        fn, _path = found
        cls = current[0]
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in kind_names:
                    out.emits.add(func.id)
                resolved = _resolve_method(func, cls)
                if resolved is not None and resolved[1] == "_transition":
                    for arg in node.args:
                        state = _nodestate_name(arg)
                        if state is not None:
                            out.transitions.add(state)
            elif isinstance(node, ast.Attribute):
                resolved = _resolve_method(node, cls)
                if resolved is None or resolved[1] == "_transition":
                    continue
                if resolved in entry_map:
                    if resolved != entry:
                        out.delegates.add(entry_map[resolved])
                elif resolved in index:
                    queue.append(resolved)
            elif isinstance(node, ast.Compare):
                for sub in ast.walk(node):
                    state = _nodestate_name(sub)
                    if state is not None:
                        out.guard_states.add(state)


# ----------------------------------------------------------------------
# dispatch arms
# ----------------------------------------------------------------------
def _extract_arms(
    dispatcher: str,
    fn: ast.FunctionDef,
    path: str,
    current_class: str,
    entry_methods: frozenset[str],
    kind_names: frozenset[str],
) -> Iterable[Arm]:
    own_method = dispatcher.split(".")[1]
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        kinds = _isinstance_kinds(node.test, kind_names)
        if not kinds:
            continue
        # Resolve the arm's target: the first spec-handler call inside the
        # arm body.  ``if not isinstance(...): return`` inverted guards
        # (and inline handling with no handler call) route to the
        # dispatcher function itself.
        target = own_method
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    resolved = _resolve_method(sub.func, current_class)
                    if resolved is not None and resolved[1] in entry_methods:
                        target = resolved[1]
                        break
            if target != own_method:
                break
        for kind in kinds:
            yield Arm(dispatcher, kind, target, path, node.lineno)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def extract_project(
    files: Sequence[tuple[str, ast.Module]],
    spec: tuple[Exchange, ...] = PROTOCOL_SPEC,
) -> Extraction:
    """Recover the implemented machine from parsed ``(path, tree)`` files."""
    registered = _collect_registered(files)
    kind_names = frozenset(registered)
    index, present = _index_methods(files)

    entry_map: dict[tuple[str, str], str] = {}
    for ex in spec:
        cls, meth = ex.handler.split(".", 1)
        entry_map[(cls, meth)] = ex.name
    entry_methods = frozenset(meth for _cls, meth in entry_map)

    exchanges: dict[str, ExtractedExchange] = {}
    for ex in spec:
        cls, meth = ex.handler.split(".", 1)
        extracted = ExtractedExchange(ex.name, ex.handler)
        found = index.get((cls, meth))
        if found is not None:
            fn, path = found
            extracted.found = True
            extracted.path = path
            extracted.line = fn.lineno
            _scan_closure((cls, meth), index, entry_map, kind_names, extracted)
        exchanges[ex.name] = extracted

    arms: list[Arm] = []
    dispatchers = sorted({ex.dispatched_by for ex in spec if ex.dispatched_by})
    for dispatcher in dispatchers:
        cls, meth = dispatcher.split(".", 1)
        found = index.get((cls, meth))
        if found is None:
            continue
        fn, path = found
        arms.extend(
            _extract_arms(dispatcher, fn, path, cls, entry_methods, kind_names)
        )
    arms.sort(key=lambda a: (a.path, a.line, a.kind))

    return Extraction(
        modules_present=present,
        registered=registered,
        arms=arms,
        exchanges=exchanges,
    )


def _fmt(values: Iterable[str]) -> str:
    items = sorted(values)
    return "{" + ", ".join(items) + "}" if items else "{}"


def diff_against_spec(
    extraction: Extraction,
    spec: tuple[Exchange, ...] = PROTOCOL_SPEC,
) -> list[DriftFinding]:
    """Diff the implemented machine against the spec → RC5xx findings.

    Every check is gated on the relevant module being present in the
    project, so linting a partial tree stays quiet instead of reporting
    the rest of the protocol as missing.
    """
    findings: list[DriftFinding] = []
    if not extraction.modules_present:
        return findings

    by_name = {ex.name: ex for ex in spec}
    arm_kinds = {arm.kind for arm in extraction.arms}
    spec_arms = {
        (ex.dispatched_by, ex.kind): ex
        for ex in spec
        if ex.kind is not None and ex.dispatched_by is not None
    }
    kind_to_exchange = {ex.kind: ex for ex in spec if ex.kind is not None}

    def module_present(class_name: str) -> bool:
        return CLASS_MODULES.get(class_name, "") in extraction.modules_present

    # RC501 — registered kind never dispatched (and its dispatcher module
    # is present, so the arm genuinely should exist).
    for kind in sorted(extraction.registered):
        reg = extraction.registered[kind]
        spec_ex = kind_to_exchange.get(kind)
        dispatcher_cls = (
            spec_ex.dispatched_by.split(".")[0]
            if spec_ex is not None and spec_ex.dispatched_by is not None
            else {"session": "RaincoreNode", "stream": "ReplicaBase"}[reg.tier]
        )
        if not module_present(dispatcher_cls):
            continue
        if kind not in arm_kinds:
            findings.append(
                DriftFinding(
                    "RC501",
                    reg.path,
                    reg.line,
                    f"registered {reg.tier} message {kind!r} has no "
                    "isinstance dispatch arm in any spec dispatcher",
                )
            )

    # RC502 — dispatch arm the spec does not know, or routed to a
    # different handler than the spec names.
    for arm in extraction.arms:
        spec_ex = spec_arms.get((arm.dispatcher, arm.kind))
        if spec_ex is None:
            findings.append(
                DriftFinding(
                    "RC502",
                    arm.path,
                    arm.line,
                    f"dispatch arm for {arm.kind!r} in {arm.dispatcher} "
                    "has no exchange in the protocol spec",
                )
            )
            continue
        spec_method = spec_ex.handler.split(".")[1]
        if arm.target != spec_method:
            findings.append(
                DriftFinding(
                    "RC502",
                    arm.path,
                    arm.line,
                    f"dispatch arm for {arm.kind!r} routes to "
                    f"{arm.target!r} but the spec names {spec_method!r} "
                    f"(exchange {spec_ex.name!r})",
                )
            )

    # RC503 — spec entries the code does not implement.
    extracted_arm_keys = {(arm.dispatcher, arm.kind) for arm in extraction.arms}
    for ex in spec:
        extracted = extraction.exchanges[ex.name]
        handler_cls = ex.handler.split(".")[0]
        if not module_present(handler_cls):
            continue
        if not extracted.found:
            mod = CLASS_MODULES.get(handler_cls, "?")
            findings.append(
                DriftFinding(
                    "RC503",
                    mod,
                    1,
                    f"spec exchange {ex.name!r} names handler "
                    f"{ex.handler!r}, which does not exist",
                )
            )
            continue
        if ex.kind is not None and ex.dispatched_by is not None:
            dispatcher_cls = ex.dispatched_by.split(".")[0]
            if (
                module_present(dispatcher_cls)
                and (ex.dispatched_by, ex.kind) not in extracted_arm_keys
            ):
                findings.append(
                    DriftFinding(
                        "RC503",
                        extracted.path,
                        extracted.line,
                        f"spec exchange {ex.name!r} expects a dispatch arm "
                        f"for {ex.kind!r} in {ex.dispatched_by}, but none "
                        "was found",
                    )
                )

    # RC504/RC505/RC506 — per-exchange machine-shape drift.
    for ex in spec:
        extracted = extraction.exchanges[ex.name]
        if not extracted.found:
            continue
        checks = (
            ("RC504", "emits", set(ex.emits), extracted.emits),
            ("RC505", "transitions", set(ex.transitions), extracted.transitions),
            ("RC505", "guard states", set(ex.guard_states), extracted.guard_states),
            ("RC506", "delegates", set(ex.delegates), extracted.delegates),
        )
        for rule_id, label, specced, actual in checks:
            if specced == actual:
                continue
            findings.append(
                DriftFinding(
                    rule_id,
                    extracted.path,
                    extracted.line,
                    f"exchange {ex.name!r} {label} drift: spec "
                    f"{_fmt(specced)} vs implemented {_fmt(actual)}",
                )
            )

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def extract_from_sources(
    sources: Sequence[tuple[str, str]],
    spec: tuple[Exchange, ...] = PROTOCOL_SPEC,
) -> Extraction:
    """Convenience: parse ``(path, source)`` pairs then extract."""
    files = [(path, ast.parse(text, filename=path)) for path, text in sources]
    return extract_project(files, spec)
