"""``repro spec`` — check / explore / render the protocol spec.

``check``
    Static conformance: validate the spec's internal structure, compare
    the lifecycle table against ``repro.core.states.VALID_TRANSITIONS``,
    then extract the implemented machine from the source tree and diff
    it against the spec (the RC501–RC506 drift rules).  Nonzero exit on
    any drift — this is the CI gate.
``explore``
    Bounded model checking of the spec under loss/duplication/reorder
    (see :mod:`repro.spec.model`).  Runs the focused envelope suite by
    default; ``--fixture`` explores a deliberately broken spec and is
    expected to find a counterexample, which can be written out as a
    replayable chaos trace with ``--emit-trace``.
``render``
    Print (or write) the byte-stable markdown rendering of the spec.
"""

from __future__ import annotations

import argparse
from pathlib import Path

__all__ = ["add_spec_arguments", "cmd_spec"]


def add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.spec.model import BROKEN_FIXTURES

    sub = parser.add_subparsers(dest="spec_command", required=True)

    p = sub.add_parser("check", help="spec structure + spec↔code drift gate")
    p.add_argument(
        "--root", metavar="DIR", default=None,
        help="source root to scan (default: the installed repro package)",
    )

    p = sub.add_parser("explore", help="bounded model check of the spec")
    p.add_argument("--nodes", type=int, default=3, help="cluster size, 2..4 (default 3)")
    p.add_argument("--loss", action="store_true", help="adversary may drop messages")
    p.add_argument("--dup", action="store_true", help="adversary may duplicate the token")
    p.add_argument(
        "--fixture", choices=tuple(sorted(BROKEN_FIXTURES)), metavar="NAME",
        default=None,
        help="explore a deliberately broken spec (expected: counterexample)",
    )
    p.add_argument(
        "--envelope", metavar="NAME", default=None,
        help="run a single named fault envelope instead of the whole suite",
    )
    p.add_argument(
        "--max-states", type=int, default=1_500_000,
        help="per-envelope state cap (default 1500000)",
    )
    p.add_argument(
        "--emit-trace", metavar="TRACE.json", default=None,
        help="write the first counterexample as a replayable chaos trace",
    )

    p = sub.add_parser("render", help="byte-stable markdown rendering of the spec")
    p.add_argument(
        "--out", metavar="FILE.md", default=None,
        help="write here instead of stdout",
    )


# ----------------------------------------------------------------------
# check
# ----------------------------------------------------------------------
def _source_root(arg: str | None) -> Path:
    if arg is not None:
        return Path(arg)
    import repro

    return Path(repro.__file__).resolve().parent.parent


def _iter_sources(root: Path) -> list[tuple[str, str]]:
    sources = []
    for path in sorted((root / "repro").rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if "lint_fixtures" in rel:
            continue
        sources.append((rel, path.read_text(encoding="utf-8")))
    return sources


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.core.states import VALID_TRANSITIONS
    from repro.spec.extract import diff_against_spec, extract_from_sources
    from repro.spec.protocol import LIFECYCLE, PROTOCOL_SPEC, validate_spec

    problems = list(validate_spec(PROTOCOL_SPEC))
    spec_lifecycle = set(LIFECYCLE)
    code_lifecycle = {
        (src.name, dst.name) for src, dsts in VALID_TRANSITIONS.items() for dst in dsts
    }
    for pair in sorted(spec_lifecycle - code_lifecycle):
        problems.append(f"lifecycle: spec allows {pair[0]}->{pair[1]}, code does not")
    for pair in sorted(code_lifecycle - spec_lifecycle):
        problems.append(f"lifecycle: code allows {pair[0]}->{pair[1]}, spec does not")
    for problem in problems:
        print(f"spec: {problem}")

    root = _source_root(args.root)
    if not (root / "repro").is_dir():
        print(f"spec: no 'repro' package under {root}")
        return 2
    extraction = extract_from_sources(_iter_sources(root))
    findings = diff_against_spec(extraction)
    for f in findings:
        print(f"{f.path}:{f.line}: {f.rule} {f.message}")
    total = len(problems) + len(findings)
    modules = len(extraction.modules_present)
    print(
        f"spec check: {len(PROTOCOL_SPEC)} exchanges, {modules} spec modules "
        f"scanned, {total} problem(s)"
    )
    return 1 if total else 0


# ----------------------------------------------------------------------
# explore
# ----------------------------------------------------------------------
def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.spec.model import (
        BROKEN_FIXTURES,
        broken_spec,
        check_envelopes,
        check_spec,
        counterexample_schedule,
        default_envelopes,
        format_counterexample,
    )
    from repro.spec.protocol import PROTOCOL_SPEC

    spec = PROTOCOL_SPEC
    expected_prop = None
    if args.fixture:
        exchange, guard, effect, expected_prop = BROKEN_FIXTURES[args.fixture]
        spec = broken_spec(exchange, guard, effect)
        print(
            f"fixture {args.fixture}: {exchange} rebinds {guard}->{effect} "
            f"(expect a {expected_prop!r} counterexample)"
        )

    if args.envelope is not None:
        envelopes = default_envelopes(args.nodes)
        if args.envelope not in envelopes:
            print(f"unknown envelope {args.envelope!r}; have {sorted(envelopes)}")
            return 2
        results = {
            args.envelope: check_spec(
                spec,
                nodes=args.nodes,
                loss=args.loss,
                dup=args.dup,
                budgets=envelopes[args.envelope],
                max_states=args.max_states,
            )
        }
    else:
        results = check_envelopes(
            spec,
            nodes=args.nodes,
            loss=args.loss,
            dup=args.dup,
            max_states=args.max_states,
        )

    violations = []
    truncated = False
    for name in sorted(results):
        r = results[name]
        status = "exhausted" if r.exhausted else ("truncated" if r.truncated else "stopped")
        print(
            f"envelope {name}: {r.states} states, {r.transitions} transitions, "
            f"{status}, {len(r.violations)} violation(s)"
        )
        violations.extend(r.violations)
        truncated = truncated or r.truncated

    if violations:
        first = violations[0]
        print()
        print(format_counterexample(first))
        if args.emit_trace:
            schedule = counterexample_schedule(first, args.nodes)
            Path(args.emit_trace).write_text(schedule.to_json(), encoding="utf-8")
            print(f"chaos trace written to {args.emit_trace}")
        if expected_prop is not None:
            hit = any(v.prop == expected_prop for v in violations)
            print(
                f"fixture verdict: {'found' if hit else 'MISSED'} the expected "
                f"{expected_prop!r} violation"
            )
            return 0 if hit else 1
        return 1
    if expected_prop is not None:
        print(f"fixture verdict: MISSED the expected {expected_prop!r} violation")
        return 1
    if truncated:
        print("warning: state cap hit before exhaustion — raise --max-states")
        return 2
    print("no counterexamples: every envelope explored to fixpoint")
    return 0


# ----------------------------------------------------------------------
# render
# ----------------------------------------------------------------------
def _cmd_render(args: argparse.Namespace) -> int:
    from repro.spec.render import render_spec

    text = render_spec()
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"spec rendered to {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_spec(args: argparse.Namespace) -> int:
    return {"check": _cmd_check, "explore": _cmd_explore, "render": _cmd_render}[
        args.spec_command
    ](args)
