"""Bounded explicit-state model checking of the rainspec protocol spec.

This module *interprets* the guard→effect rule tables carried by the
:class:`repro.spec.protocol.Exchange` records — it does not re-encode the
protocol.  An abstract cluster (N nodes, an in-flight message multiset,
fault budgets) is explored breadth-first under message loss, duplication
and arbitrary reordering, and three safety monitors derived from the
paper's claims are checked on every transition:

``order``
    A node never *accepts* a token whose seq is not strictly greater than
    the last seq it accepted (paper §2.2: duplicate tokens die at the
    first node that saw a newer hop — no agreed-order interleaving).
``lineage``
    A bound node never accepts a token from an unrelated lineage: the
    token's gen must equal the binding or the binding must appear in the
    token's ancestry chain (single live lineage followed per node).
``quarantine``
    Quarantine is absorbing until backoff: a quarantined peer never sits
    in the quarantiner's pending-join or pending-merge queues, and never
    rides a ring the quarantiner forwards.

The monitors are structural — they look at the abstract state, not at
which rule fired — so a deliberately mis-bound spec (see
:data:`BROKEN_FIXTURES`) drives the same interpreter into a monitor
violation, and the shortest path to it is reconstructed and rendered as a
chaos trace (:func:`counterexample_schedule`) replayable with
``repro chaos --replay``.

Exploration is exact within explicit budgets (token hops, regenerations,
911 rounds, duplications, FD repairs, beacons, quarantine events); the
budgets are what keep the seq counters — and hence the state space —
finite.  "Exhausted" in the result means the frontier drained under
those budgets, i.e. every reachable state was visited.

Everything is deterministic: node ids are letters, lineage ids are
minted from a counter carried in the state, and every set is iterated
through ``sorted()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.chaos.schedule import ChaosParams, FaultOp, Schedule, node_names
from repro.spec.protocol import PROTOCOL_SPEC, Exchange

__all__ = [
    "Budgets",
    "CheckResult",
    "Counterexample",
    "SpecModel",
    "BROKEN_FIXTURES",
    "broken_spec",
    "check_spec",
    "check_envelopes",
    "counterexample_schedule",
    "default_envelopes",
    "format_counterexample",
]


# ----------------------------------------------------------------------
# abstract state
# ----------------------------------------------------------------------
class Tok(NamedTuple):
    """An abstract token: lineage, hop seq, ring, ancestry, TBM flag."""

    gen: str
    seq: int
    ring: tuple[str, ...]
    ancestry: tuple[str, ...]
    tbm: bool


class Rnd(NamedTuple):
    """One in-progress 911 round at a STARVING node."""

    awaiting: frozenset[str]
    grants: int
    jps: int
    dead: frozenset[str]


class Node(NamedTuple):
    """Abstract per-node state.

    ``holding`` is a live token this node has accepted and not yet
    forwarded; ``copy`` is the (token, sent_to) snapshot taken at the
    last forward (the failure-on-delivery reservoir); ``held`` is a
    TBM token parked until our own token arrives.
    """

    st: str
    binding: str | None
    last_seen: int
    holding: Tok | None
    copy: tuple[Tok, str] | None
    held: Tok | None
    joins: frozenset[str]
    merges: frozenset[str]
    quar: frozenset[str]
    rnd: Rnd | None
    members: tuple[str, ...]


class Budgets(NamedTuple):
    """Fault/progress budgets; every decrement shrinks the reachable cone."""

    hops: int
    regens: int
    rounds: int
    dups: int
    repairs: int
    beacons: int
    quars: int


class State(NamedTuple):
    nodes: tuple[Node, ...]
    flight: tuple[tuple, ...]
    budgets: Budgets
    mint: int


#: Message shapes carried in ``State.flight`` (always kept sorted):
#:   ("tok", dst, Tok)
#:   ("911", dst, sender, copy_seq)
#:   ("rep", dst, sender, verdict)    verdict ∈ {"grant", "jp", "deny"}

_ANCESTRY_CAP = 3


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
class Counterexample(NamedTuple):
    """A monitor violation plus the action path from the initial state."""

    prop: str
    message: str
    path: tuple[tuple, ...]


@dataclass
class CheckResult:
    nodes: int
    states: int = 0
    transitions: int = 0
    exhausted: bool = False
    truncated: bool = False
    violations: list[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ----------------------------------------------------------------------
# broken-spec fixtures (used by tests and ``repro spec explore --fixture``)
# ----------------------------------------------------------------------
def broken_spec(
    exchange_name: str, guard: str, effect: str, spec: tuple[Exchange, ...] = PROTOCOL_SPEC
) -> tuple[Exchange, ...]:
    """Return ``spec`` with one guard of one exchange re-bound to ``effect``.

    The mutated spec stays structurally valid (guards/effects come from
    the known vocabularies) but is *wrong*: the model checker must find a
    counterexample for each entry of :data:`BROKEN_FIXTURES`.
    """
    out: list[Exchange] = []
    hit = False
    for ex in spec:
        if ex.name != exchange_name:
            out.append(ex)
            continue
        rules = tuple((g, effect if g == guard else e) for g, e in ex.rules)
        if rules == ex.rules:
            raise ValueError(f"guard {guard!r} not found on exchange {exchange_name!r}")
        hit = True
        out.append(
            Exchange(
                name=ex.name,
                dispatcher=ex.dispatcher,
                handler=ex.handler,
                kind=ex.kind,
                dispatched_by=ex.dispatched_by,
                guard_states=ex.guard_states,
                transitions=ex.transitions,
                emits=ex.emits,
                delegates=ex.delegates,
                rules=rules,
                doc=ex.doc,
            )
        )
    if not hit:
        raise ValueError(f"unknown exchange {exchange_name!r}")
    return tuple(out)


#: fixture name → (exchange, guard, rebound effect, property expected to trip)
BROKEN_FIXTURES: dict[str, tuple[str, str, str, str]] = {
    "accept-stale": ("token-accept", "stale_seq", "accept", "order"),
    "accept-foreign": ("token-accept", "foreign_lineage", "accept", "lineage"),
    "quarantine-leak": ("bodyodor", "sender_quarantined", "queue_merge", "quarantine"),
}


# ----------------------------------------------------------------------
# the checker
# ----------------------------------------------------------------------
class SpecModel:
    """Explicit-state exploration of one spec under one fault envelope."""

    def __init__(
        self,
        spec: tuple[Exchange, ...] = PROTOCOL_SPEC,
        *,
        nodes: int = 3,
        loss: bool = False,
        dup: bool = False,
        budgets: Budgets | None = None,
    ) -> None:
        if not 2 <= nodes <= 4:
            raise ValueError("the bounded model covers N=2..4 nodes")
        self.spec = spec
        self.rules: dict[str, tuple[tuple[str, str], ...]] = {
            ex.name: ex.rules for ex in spec if ex.rules
        }
        self.n = nodes
        self.ids: tuple[str, ...] = tuple(chr(ord("a") + i) for i in range(nodes))
        self.loss = loss
        self.dup = dup
        # the full adversary product: exact but wide (millions of states
        # at N=3) — the envelope suite is the practical default
        self.budgets = budgets or Budgets(
            hops=3, regens=1, rounds=1, dups=1 if dup else 0, repairs=1, beacons=1, quars=1
        )
        #: violations found while building the *current* successor; the
        #: explorer drains this after every transition function call.
        self._pending: list[tuple[str, str]] = []

    # -- rule interpretation -------------------------------------------
    def _effect(self, exchange: str, flags: dict[str, bool]) -> str | None:
        """First rule of ``exchange`` whose guard holds; ``ok`` always holds."""
        for guard, effect in self.rules.get(exchange, ()):
            if guard == "ok" or flags.get(guard, False):
                return effect
        return None

    def _violate(self, prop: str, message: str) -> None:
        self._pending.append((prop, message))

    # -- initial state -------------------------------------------------
    def initial_state(self) -> State:
        ring = self.ids
        tok = Tok("L0", 1, ring, (), False)
        nodes = []
        for i, nid in enumerate(ring):
            succ = ring[(i + 1) % len(ring)]
            # steady-state fiction: the last node just forwarded seq 1 to
            # the first; everyone else holds an older copy of the round.
            copy = (tok, ring[0]) if i == len(ring) - 1 else (Tok("L0", 0, ring, (), False), succ)
            nodes.append(
                Node(
                    st="HUNGRY",
                    binding="L0",
                    last_seen=0,
                    holding=None,
                    copy=copy,
                    held=None,
                    joins=frozenset(),
                    merges=frozenset(),
                    quar=frozenset(),
                    rnd=None,
                    members=ring,
                )
            )
        flight = (("tok", ring[0], tok),)
        return State(tuple(nodes), flight, self.budgets, 1)

    # -- small helpers -------------------------------------------------
    def _idx(self, nid: str) -> int:
        return self.ids.index(nid)

    @staticmethod
    def _succ(ring: tuple[str, ...], nid: str) -> str:
        i = ring.index(nid)
        return ring[(i + 1) % len(ring)]

    @staticmethod
    def _with_node(state: State, idx: int, node: Node) -> State:
        nodes = state.nodes[:idx] + (node,) + state.nodes[idx + 1 :]
        return state._replace(nodes=nodes)

    @staticmethod
    def _without_msg(state: State, msg: tuple) -> State:
        flight = list(state.flight)
        flight.remove(msg)
        return state._replace(flight=tuple(sorted(flight)))

    @staticmethod
    def _with_msgs(state: State, msgs: list[tuple]) -> State:
        return state._replace(flight=tuple(sorted(list(state.flight) + msgs)))

    # -- token acceptance (the token-accept exchange) ------------------
    def _accept_token(self, state: State, nid: str, tok: Tok) -> State:
        """Deliver ``tok`` at ``nid``, interpreting the token-accept rules."""
        idx = self._idx(nid)
        node = state.nodes[idx]
        if node.st == "DOWN":
            return state  # guard_states: dead nodes eat messages
        flags = {
            "tbm": tok.tbm,
            "foreign_lineage": (
                node.binding is not None
                and node.st != "JOINING"
                and tok.gen != node.binding
                and node.binding not in tok.ancestry
            ),
            "stale_seq": tok.seq <= node.last_seen,
            "not_in_ring": nid not in tok.ring,
        }
        effect = self._effect("token-accept", flags)
        if effect == "drop" or effect is None:
            return state
        if effect == "hold_tbm":
            return self._hold_tbm(state, idx, tok)
        if effect == "divert":
            return self._divert(state, nid, tok)
        if effect == "accept":
            # structural monitors — independent of which guard fired
            if tok.seq <= node.last_seen:
                self._violate(
                    "order",
                    f"{nid} accepts token {tok.gen}#{tok.seq} at last_seen={node.last_seen}",
                )
            if flags["foreign_lineage"]:
                self._violate(
                    "lineage",
                    f"{nid} bound to {node.binding} accepts unrelated token {tok.gen}",
                )
            return self._do_accept(state, idx, tok)
        raise AssertionError(f"effect {effect!r} unreachable in token-accept")

    def _do_accept(self, state: State, idx: int, tok: Tok) -> State:
        nid = self.ids[idx]
        node = state.nodes[idx]
        # join-apply: splice queued joiners in after us, evict quarantined
        ring = list(tok.ring)
        if self._effect("join-apply", {}) == "apply_joins":
            pos = ring.index(nid) + 1 if nid in ring else len(ring)
            for joiner in sorted(node.joins):
                if joiner not in ring:
                    ring.insert(pos, joiner)
                    pos += 1
            ring = [m for m in ring if m == nid or m not in node.quar]
        leaked = sorted(frozenset(ring) & (node.quar - {nid}))
        if leaked:
            # quarantine is absorbing: the visit must have evicted the peer
            self._violate(
                "quarantine",
                f"{nid} completes a visit with quarantined {leaked[0]} still in the ring",
            )
        tok = tok._replace(ring=tuple(ring), tbm=False)
        node = node._replace(
            st="EATING",
            binding=tok.gen,
            last_seen=tok.seq,
            holding=tok,
            joins=frozenset(),
            rnd=None,
            members=tok.ring,
        )
        state = self._with_node(state, idx, node)
        if node.held is not None and self._effect("merge-complete", {}) == "merge":
            state = self._merge_with_own(state, idx)
        return state

    def _hold_tbm(self, state: State, idx: int, tok: Tok) -> State:
        node = state.nodes[idx]
        if node.st == "JOINING":
            return state  # not a member yet: TBM dies (initiator recovers)
        effect = self._effect("tbm-hold", {"already_holding": node.held is not None})
        if effect != "hold_tbm":
            return state  # refuse_tbm: second initiator's ring routes around us
        state = self._with_node(state, idx, node._replace(held=tok))
        if node.st == "EATING" and node.holding is not None:
            if self._effect("merge-complete", {}) == "merge":
                state = self._merge_with_own(state, idx)
        return state

    def _merge_with_own(self, state: State, idx: int) -> State:
        nid = self.ids[idx]
        node = state.nodes[idx]
        assert node.held is not None and node.holding is not None
        held, own = node.held, node.holding
        ring = list(held.ring)
        if nid not in ring:
            ring.append(nid)
        pos = ring.index(nid) + 1
        for m in own.ring:
            if m not in ring:
                ring.insert(pos, m)
                pos += 1
        gen = f"L{state.mint}"
        ancestry = ((held.gen, own.gen) + own.ancestry)[:_ANCESTRY_CAP]
        merged = Tok(gen, max(held.seq, own.seq) + 1, tuple(ring), ancestry, False)
        node = node._replace(
            binding=gen,
            last_seen=merged.seq,
            holding=merged,
            held=None,
            joins=node.joins - frozenset(ring),
            merges=node.merges - frozenset(ring),
            members=merged.ring,
        )
        return self._with_node(state, idx, node)._replace(mint=state.mint + 1)

    def _divert(self, state: State, nid: str, tok: Tok) -> State:
        if nid not in tok.ring or len(tok.ring) <= 1:
            return state
        nxt = self._succ(tok.ring, nid)
        ring = tuple(m for m in tok.ring if m != nid)
        if not ring:
            return state
        return self._with_msgs(state, [("tok", nxt, tok._replace(ring=ring))])

    # -- 911 handling --------------------------------------------------
    def _handle_911(self, state: State, msg: tuple) -> State:
        _, dst, sender, copy_seq = msg
        idx = self._idx(dst)
        node = state.nodes[idx]
        if node.st == "DOWN":
            return state
        copy_tok = node.copy[0] if node.copy is not None else None
        flags = {
            "sender_not_member": sender not in node.members,
            "have_token": node.st == "EATING",
            "newer_copy": copy_tok is not None
            and (copy_tok.seq > copy_seq or (copy_tok.seq == copy_seq and dst < sender)),
        }
        effect = self._effect("911-request", flags)
        verdict = {
            "reply_join_pending": "jp",
            "reply_deny_token": "deny",
            "reply_deny_newer": "deny",
            "reply_grant": "grant",
        }.get(effect or "", "deny")
        if effect == "reply_join_pending" and sender not in node.quar:
            node = node._replace(joins=node.joins | {sender})
            state = self._with_node(state, idx, node)
        return self._with_msgs(state, [("rep", sender, dst, verdict)])

    def _handle_reply(self, state: State, msg: tuple) -> State:
        _, dst, sender, verdict = msg
        idx = self._idx(dst)
        node = state.nodes[idx]
        if node.st != "STARVING" or node.rnd is None or sender not in node.rnd.awaiting:
            return state
        if verdict == "deny":
            effect = self._effect("911-reply", {"deny": True})
            if effect == "back_to_hungry":
                return self._with_node(state, idx, node._replace(st="HUNGRY", rnd=None))
            # mis-bound fixture could fall through to regenerate
            return self._complete_round(state, idx, node.rnd._replace(awaiting=frozenset()))
        rnd = node.rnd._replace(
            awaiting=node.rnd.awaiting - {sender},
            grants=node.rnd.grants + (1 if verdict == "grant" else 0),
            jps=node.rnd.jps + (1 if verdict == "jp" else 0),
        )
        if rnd.awaiting:
            return self._with_node(state, idx, node._replace(rnd=rnd))
        return self._complete_round(state, idx, rnd)

    def _complete_round(self, state: State, idx: int, rnd: Rnd) -> State:
        node = state.nodes[idx]
        flags = {"deny": False, "all_join_pending": rnd.grants == 0 and rnd.jps > 0}
        effect = self._effect("911-reply", flags)
        if effect == "to_joining":
            return self._with_node(state, idx, node._replace(st="JOINING", rnd=None))
        if effect == "back_to_hungry":
            return self._with_node(state, idx, node._replace(st="HUNGRY", rnd=None))
        return self._regenerate(state, idx, rnd.dead)

    def _regenerate(self, state: State, idx: int, dead: frozenset[str]) -> State:
        nid = self.ids[idx]
        node = state.nodes[idx]
        if state.budgets.regens <= 0:
            # budget exhausted: the node stalls STARVING — safe, just bounded
            return self._with_node(state, idx, node._replace(rnd=None))
        state = state._replace(budgets=state.budgets._replace(regens=state.budgets.regens - 1))
        gen = f"L{state.mint}"
        state = state._replace(mint=state.mint + 1)
        if node.copy is None:
            tok = Tok(gen, node.last_seen + 1, (nid,), (), False)
        else:
            copy_tok, _sent = node.copy
            ring = tuple(m for m in copy_tok.ring if m == nid or m not in dead)
            ancestry = ((copy_tok.gen,) + copy_tok.ancestry)[:_ANCESTRY_CAP]
            tok = Tok(gen, max(copy_tok.seq, node.last_seen) + 1, ring, ancestry, False)
        state = self._with_node(state, idx, state.nodes[idx]._replace(rnd=None))
        return self._accept_token(state, nid, tok)

    def _start_round(self, state: State, idx: int) -> State:
        nid = self.ids[idx]
        node = state.nodes[idx]
        node = node._replace(st="STARVING")
        state = self._with_node(state, idx, node)
        peers = sorted(m for m in node.members if m != nid)
        if not peers:
            return self._regenerate(state, idx, frozenset())
        copy_seq = node.copy[0].seq if node.copy is not None else -1
        state = self._with_node(
            state, idx, node._replace(rnd=Rnd(frozenset(peers), 0, 0, frozenset()))
        )
        return self._with_msgs(state, [("911", p, nid, copy_seq) for p in peers])

    # -- bodyodor ------------------------------------------------------
    def _handle_beacon(self, state: State, a: str, b: str) -> State:
        """Node ``a`` beacons; ``b`` interprets the bodyodor rules."""
        idx = self._idx(b)
        node = state.nodes[idx]
        a_group = state.nodes[self._idx(a)].binding or ""
        flags = {
            "not_member": node.st in ("DOWN", "JOINING"),
            "sender_member": a in node.members,
            "sender_quarantined": a in node.quar,
            "higher_group": a_group >= (node.binding or ""),
        }
        effect = self._effect("bodyodor", flags)
        if effect != "queue_merge":
            return state
        return self._with_node(state, idx, node._replace(merges=node.merges | {a}))

    # -- successor enumeration -----------------------------------------
    def successors(self, state: State) -> list[tuple[tuple, State, list[tuple[str, str]]]]:
        """All (action, next_state, violations) transitions from ``state``."""
        out: list[tuple[tuple, State, list[tuple[str, str]]]] = []

        def emit(action: tuple, nxt: State) -> None:
            nxt = nxt._replace(flight=tuple(sorted(nxt.flight)))
            violations = list(self._pending)
            self._pending.clear()
            violations.extend(self._post_checks(nxt))
            out.append((action, nxt, violations))

        seen_msgs: set[tuple] = set()
        for msg in state.flight:
            if msg in seen_msgs:
                continue  # identical copies: one deliver/drop/dup branch each
            seen_msgs.add(msg)
            base = self._without_msg(state, msg)
            if msg[0] == "tok":
                emit(("deliver", msg), self._accept_token(base, msg[1], msg[2]))
            elif msg[0] == "911":
                emit(("deliver", msg), self._handle_911(base, msg))
            else:
                emit(("deliver", msg), self._handle_reply(base, msg))
            if self.loss:
                emit(("drop", msg), base)
            if self.dup and state.budgets.dups > 0 and msg[0] == "tok":
                dupped = self._with_msgs(state, [msg])
                dupped = dupped._replace(
                    budgets=dupped.budgets._replace(dups=dupped.budgets.dups - 1)
                )
                emit(("dup", msg), dupped)

        for idx, nid in enumerate(self.ids):
            node = state.nodes[idx]
            # token-forward (+ merge-initiate)
            if node.holding is not None and node.st == "EATING" and state.budgets.hops > 0:
                emit(("forward", nid), self._forward(state, idx))
            # timeout-starve
            if node.st == "HUNGRY" and node.rnd is None and state.budgets.rounds > 0:
                nxt = state._replace(
                    budgets=state.budgets._replace(rounds=state.budgets.rounds - 1)
                )
                if self._effect("timeout-starve", {"hungry": True}) == "start_round":
                    emit(("timeout", nid), self._start_round(nxt, idx))
            # round give-up (timeout + failure detector writes off the silent)
            if node.st == "STARVING" and node.rnd is not None and node.rnd.awaiting:
                rnd = node.rnd._replace(
                    awaiting=frozenset(), dead=node.rnd.dead | node.rnd.awaiting
                )
                emit(("giveup", nid), self._complete_round(state, idx, rnd))
            # fd-repair from the local copy
            if (
                node.st == "HUNGRY"
                and node.copy is not None
                and state.budgets.repairs > 0
                and self._effect("fd-repair", {"newer_seen": node.last_seen >= node.copy[0].seq})
                == "repair"
            ):
                emit(("repair", nid), self._repair(state, idx))
            # held-TBM safety valve
            if node.held is not None:
                emit(("tbm-drop", nid), self._with_node(state, idx, node._replace(held=None)))
            # join retry / escalation
            if node.st == "JOINING":
                contacts = sorted(m for m in node.members if m != nid)
                if contacts and state.budgets.rounds > 0:
                    copy_seq = node.copy[0].seq if node.copy is not None else -1
                    nxt = state._replace(
                        budgets=state.budgets._replace(rounds=state.budgets.rounds - 1)
                    )
                    emit(
                        ("join-retry", nid),
                        self._with_msgs(nxt, [("911", contacts[0], nid, copy_seq)]),
                    )
                if node.copy is not None and state.budgets.rounds > 0:
                    nxt = state._replace(
                        budgets=state.budgets._replace(rounds=state.budgets.rounds - 1)
                    )
                    emit(("join-escalate", nid), self._start_round(nxt, idx))
            # beacons and quarantine decisions involve a peer
            for pidx, peer in enumerate(self.ids):
                if peer == nid:
                    continue
                if (
                    state.budgets.beacons > 0
                    and node.st not in ("DOWN", "JOINING")
                    and peer not in node.members
                ):
                    nxt = state._replace(
                        budgets=state.budgets._replace(beacons=state.budgets.beacons - 1)
                    )
                    emit(("beacon", nid, peer), self._handle_beacon(nxt, nid, peer))
                if (
                    state.budgets.quars > 0
                    and node.st != "DOWN"
                    and peer not in node.quar
                    and self._effect("quarantine", {}) == "quarantine"
                ):
                    nxt = state._replace(
                        budgets=state.budgets._replace(quars=state.budgets.quars - 1)
                    )
                    quarantined = node._replace(
                        quar=node.quar | {peer},
                        joins=node.joins - {peer},
                        merges=node.merges - {peer},
                    )
                    emit(("quarantine", nid, peer), self._with_node(nxt, idx, quarantined))
        return out

    def _forward(self, state: State, idx: int) -> State:
        nid = self.ids[idx]
        node = state.nodes[idx]
        assert node.holding is not None
        tok = node.holding
        tgt = None
        if node.merges and self._effect("merge-initiate", {}) == "initiate_merge":
            candidates = sorted(node.merges - frozenset(tok.ring))
            tgt = candidates[0] if candidates else None
        if tgt is not None:
            ring = list(tok.ring)
            ring.insert(ring.index(nid) + 1, tgt)
            sent = Tok(tok.gen, tok.seq + 1, tuple(ring), tok.ancestry, True)
            dst = tgt
            node = node._replace(merges=node.merges - {tgt})
        else:
            sent = tok._replace(seq=tok.seq + 1)
            dst = self._succ(tok.ring, nid)
        node = node._replace(st="HUNGRY", holding=None, copy=(sent, dst))
        state = self._with_node(state, idx, node)
        state = state._replace(budgets=state.budgets._replace(hops=state.budgets.hops - 1))
        return self._with_msgs(state, [("tok", dst, sent)])

    def _repair(self, state: State, idx: int) -> State:
        nid = self.ids[idx]
        node = state.nodes[idx]
        assert node.copy is not None
        sent, dead = node.copy
        ring = tuple(m for m in sent.ring if m != dead)
        if nid not in ring:
            return state
        state = state._replace(budgets=state.budgets._replace(repairs=state.budgets.repairs - 1))
        return self._accept_token(state, nid, sent._replace(ring=ring, tbm=False))

    # -- monitors over whole states ------------------------------------
    def _post_checks(self, state: State) -> list[tuple[str, str]]:
        found: list[tuple[str, str]] = []
        for idx, nid in enumerate(self.ids):
            node = state.nodes[idx]
            leaked = sorted(node.quar & (node.joins | node.merges))
            if leaked:
                found.append(
                    (
                        "quarantine",
                        f"{nid} holds quarantined peer {leaked[0]} in a pending queue",
                    )
                )
        return found

    # -- exploration ---------------------------------------------------
    def check(self, *, max_states: int = 200_000, stop_on_first: bool = True) -> CheckResult:
        """BFS from the initial state; returns exploration stats + violations."""
        result = CheckResult(nodes=self.n)
        init = self.initial_state()
        parent: dict[State, tuple[State, tuple] | None] = {init: None}
        frontier: list[State] = [init]
        result.states = 1
        while frontier:
            next_frontier: list[State] = []
            for state in frontier:
                for action, nxt, violations in self.successors(state):
                    result.transitions += 1
                    if violations:
                        path = self._path_to(parent, state) + (action,)
                        for prop, message in violations:
                            result.violations.append(Counterexample(prop, message, path))
                        if stop_on_first:
                            return result
                        continue  # do not explore past a violating transition
                    if nxt in parent:
                        continue
                    if result.states >= max_states:
                        result.truncated = True
                        return result
                    parent[nxt] = (state, action)
                    result.states += 1
                    next_frontier.append(nxt)
            frontier = next_frontier
        result.exhausted = True
        return result

    @staticmethod
    def _path_to(
        parent: dict[State, tuple[State, tuple] | None], state: State
    ) -> tuple[tuple, ...]:
        path: list[tuple] = []
        cur: State | None = state
        while cur is not None:
            link = parent[cur]
            if link is None:
                break
            cur, action = link
            path.append(action)
        return tuple(reversed(path))


def check_spec(
    spec: tuple[Exchange, ...] = PROTOCOL_SPEC,
    *,
    nodes: int = 3,
    loss: bool = False,
    dup: bool = False,
    budgets: Budgets | None = None,
    max_states: int = 200_000,
    stop_on_first: bool = True,
) -> CheckResult:
    """One exploration under one budget vector."""
    model = SpecModel(spec, nodes=nodes, loss=loss, dup=dup, budgets=budgets)
    return model.check(max_states=max_states, stop_on_first=stop_on_first)


def default_envelopes(nodes: int) -> dict[str, Budgets]:
    """The focused fault envelopes ``repro spec explore`` runs by default.

    The *product* of every adversary dimension is exact but explodes
    (millions of states at N=3); the suite instead explores one coherent
    fault mix per envelope — each to exhaustion — so together they cover
    every dimension and the pairwise interactions the safety properties
    depend on (duplicate×repair forks, regeneration×stale-token races,
    beacon×quarantine leaks).  Budgets: (hops, regens, rounds, dups,
    repairs, beacons, quars).
    """
    hops = 3
    return {
        "circulate": Budgets(hops, 0, 0, 1, 1, 0, 0),
        "starve": Budgets(hops, 1, 1, 1, 0, 0, 0),
        "repair-starve": Budgets(hops, 1, 1, 0, 1, 0, 0),
        "merge": Budgets(hops, 1, 0, 0, 0, 1, 1),
        "quarantine": Budgets(hops, 1, 1, 0, 0, 1, 1),
    }


def check_envelopes(
    spec: tuple[Exchange, ...] = PROTOCOL_SPEC,
    *,
    nodes: int = 3,
    loss: bool = True,
    dup: bool = True,
    max_states: int = 1_500_000,
    stop_on_first: bool = True,
) -> dict[str, CheckResult]:
    """Run the default envelope suite; the ``repro spec explore`` default."""
    results: dict[str, CheckResult] = {}
    for name, budgets in sorted(default_envelopes(nodes).items()):
        results[name] = check_spec(
            spec,
            nodes=nodes,
            loss=loss,
            dup=dup,
            budgets=budgets,
            max_states=max_states,
            stop_on_first=stop_on_first,
        )
    return results


# ----------------------------------------------------------------------
# counterexample rendering
# ----------------------------------------------------------------------
def _describe_action(action: tuple) -> str:
    kind = action[0]
    if kind in ("deliver", "drop", "dup"):
        msg = action[1]
        if msg[0] == "tok":
            what = f"token {msg[2].gen}#{msg[2].seq}{' TBM' if msg[2].tbm else ''} -> {msg[1]}"
        elif msg[0] == "911":
            what = f"911 from {msg[2]} -> {msg[1]}"
        else:
            what = f"911-reply {msg[3]} from {msg[2]} -> {msg[1]}"
        return f"{kind} {what}"
    return " ".join(str(part) for part in action)


def format_counterexample(cx: Counterexample) -> str:
    lines = [f"property {cx.prop!r} violated: {cx.message}", "trace:"]
    for i, action in enumerate(cx.path):
        lines.append(f"  {i + 1:2d}. {_describe_action(action)}")
    return "\n".join(lines)


def counterexample_schedule(cx: Counterexample, nodes: int) -> Schedule:
    """Render a counterexample path as a replayable chaos trace.

    Only adversary moves become fault ops — protocol-internal steps
    (delivery order, timeouts, forwarding) are what the real stack does
    by itself.  The result is a valid ``raincore-chaos-trace`` that
    ``repro chaos --replay`` re-executes against the real cluster.
    """
    names = node_names(nodes)

    def name_of(letter: str) -> str:
        return names[ord(letter) - ord("a")]

    ops: list[FaultOp] = []
    at = 0.5
    for action in cx.path:
        kind = action[0]
        if kind == "drop":
            msg = action[1]
            if msg[0] == "tok":
                ops.append(FaultOp(at=round(at, 6), kind="lose_token_in_flight", args=(0.5,)))
            else:
                src = name_of(msg[2])
                dst = name_of(msg[1])
                ops.append(FaultOp(at=round(at, 6), kind="ack_blackout", args=(src, dst, 0.3)))
        elif kind == "dup":
            ops.append(FaultOp(at=round(at, 6), kind="forge_duplicate_token", args=()))
        elif kind == "quarantine":
            accuser, victim = name_of(action[1]), name_of(action[2])
            ops.append(FaultOp(at=round(at, 6), kind="false_alarm", args=(accuser, victim)))
        at += 0.4
    seconds = max(2.0, round(at + 1.5, 6))
    params = ChaosParams(nodes=nodes, seconds=seconds, seed=0, segments=2, intensity=0.0)
    return Schedule(params=params, ops=ops)
