"""rainspec: declarative protocol spec, conformance extraction, model
checking and rendering for the Raincore session protocol.

* :mod:`repro.spec.protocol` — the pure-data spec (the source of truth);
* :mod:`repro.spec.extract` — AST recovery of the implemented machine and
  the spec↔code drift diff (surfaced as raincheck rules RC501–RC506);
* :mod:`repro.spec.model` — bounded explicit-state exploration of the
  spec's token/911/TBM rules under loss/duplication/reorder, checking the
  paper's safety properties;
* :mod:`repro.spec.render` — byte-stable markdown rendering of the spec
  (pinned by a golden test; embedded in docs/PROTOCOL.md).

CLI: ``repro spec check | explore | render``.
"""

from repro.spec.protocol import LIFECYCLE, PROTOCOL_SPEC, Exchange, validate_spec

__all__ = ["LIFECYCLE", "PROTOCOL_SPEC", "Exchange", "validate_spec"]
