"""Deterministic discrete-event scheduler.

This is the execution substrate for the whole reproduction: network packet
arrivals, protocol timers, fault injections and workload events are all
callbacks scheduled on one :class:`EventLoop`.

Determinism rules
-----------------
* Events fire in ``(time, priority, sequence)`` order.  The monotonically
  increasing sequence number breaks ties between events scheduled for the
  same instant, so two runs with the same seed replay identically.
* All randomness used by the simulation (packet loss draws, workload
  arrivals) must come from :attr:`EventLoop.rng`, a seeded
  :class:`random.Random`.

Timers are cancellable handles rather than removable heap entries: cancelling
marks the handle dead and the heap entry is discarded when popped.  This is
the standard lazy-deletion scheme used by ``asyncio`` and keeps cancellation
O(1).

Hot-path layout
---------------
The heap stores ``(when, priority, seq, handle)`` tuples rather than bare
handles, so every sift comparison is a C-level tuple comparison instead of a
Python ``__lt__`` call — at ~10 comparisons per push/pop this is the single
largest cost of the loop.  ``run_until`` examines the heap head directly and
pops each entry exactly once per dispatch (no separate peek-then-pop scan
over cancelled entries).
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.prof import Profiler

__all__ = ["EventLoop", "TimerHandle"]


class TimerHandle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("when", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        when: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.when = when
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent."""
        self.cancelled = True

    def __lt__(self, other: "TimerHandle") -> bool:
        return (self.when, self.priority, self.seq) < (
            other.when,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"TimerHandle(when={self.when:.6f}, seq={self.seq}, {state})"


class EventLoop:
    """A seeded, deterministic discrete-event loop over a virtual clock.

    Parameters
    ----------
    seed:
        Seed for :attr:`rng`.  Every run of a scenario with the same seed
        produces an identical event trace.
    start:
        Initial virtual time in seconds.
    """

    def __init__(self, seed: int = 0, start: float = 0.0) -> None:
        # Import here to avoid a cycle when simclock wants type hints later.
        from repro.net.simclock import SimClock

        self.clock = SimClock(start)
        self.rng = random.Random(seed)
        # Heap entries: (when, priority, seq, handle).
        self._heap: list[tuple[float, int, int, TimerHandle]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        #: Optional hot-path profiler (repro.obs.prof.Profiler) — the same
        #: zero-cost-when-disabled idiom as the probe bus: one attribute
        #: load and one None test per dispatch.  The profiler observes
        #: wall-clock only; it never touches the heap, the clock or the
        #: rng, so attaching it cannot change a deterministic trace.
        self.profile: "Profiler | None" = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for run-away detection)."""
        return self._events_processed

    def call_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``.

        ``when`` must be finite and may not be in the past.  Lower
        ``priority`` values fire first among events scheduled for the same
        instant.
        """
        if not math.isfinite(when):
            # A NaN heap key silently corrupts sift ordering (every
            # comparison is False) and breaks deterministic replay; +/-inf
            # is a scheduling bug that would otherwise wedge run_until.
            raise ValueError(f"when must be finite, got {when}")
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {when} < now={self.clock.now}"
            )
        seq = next(self._seq)
        handle = TimerHandle(when, priority, seq, callback, args)
        heapq.heappush(self._heap, (when, priority, seq, handle))
        return handle

    def call_later(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if not delay >= 0.0 or delay == math.inf:
            # The inverted comparison also rejects NaN (NaN >= 0.0 is
            # False), which would otherwise corrupt heap order silently.
            raise ValueError(f"delay must be finite and non-negative, got {delay}")
        # Inlined call_at: delay >= 0 means when >= now by construction.
        when = self.clock.now + delay
        seq = next(self._seq)
        handle = TimerHandle(when, priority, seq, callback, args)
        heapq.heappush(self._heap, (when, priority, seq, handle))
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _pop_live(self) -> TimerHandle | None:
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)[3]
            if not handle.cancelled:
                return handle
        return None

    def peek_time(self) -> float | None:
        """Virtual time of the next live event, or ``None`` if idle."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Run the single next event.  Returns ``False`` if the loop is idle."""
        heap = self._heap
        prof = self.profile
        while heap:
            when, _, _, handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.clock.advance_to(when)
            self._events_processed += 1
            if prof is None:
                handle.callback(*handle.args)
            else:
                prof.begin_run()
                t0 = prof.clock()
                handle.callback(*handle.args)
                prof.account(
                    handle.callback, t0, prof.clock(), len(heap), when
                )
                prof.end_run()
            return True
        return False

    def run_until(self, deadline: float, max_events: int | None = None) -> int:
        """Run events up to and including virtual time ``deadline``.

        The clock is left exactly at ``deadline`` even if the loop drains
        early, so back-to-back ``run_until`` calls compose naturally.
        Returns the number of events executed.  ``max_events`` guards
        against run-away protocol loops in tests.
        """
        executed = 0
        heap = self._heap
        clock = self.clock
        pop = heapq.heappop
        prof = self.profile
        if prof is not None:
            prof.begin_run()
        try:
            while heap:
                entry = heap[0]
                handle = entry[3]
                if handle.cancelled:
                    pop(heap)
                    continue
                when = entry[0]
                if when > deadline:
                    break
                if max_events is not None and executed >= max_events:
                    raise RuntimeError(
                        f"run_until exceeded max_events={max_events} before {deadline}"
                    )
                pop(heap)
                clock.advance_to(when)
                self._events_processed += 1
                if prof is None:
                    handle.callback(*handle.args)
                else:
                    t0 = prof.clock()
                    handle.callback(*handle.args)
                    prof.account(
                        handle.callback, t0, prof.clock(), len(heap), when
                    )
                executed += 1
        finally:
            if prof is not None:
                prof.end_run()
        if deadline > clock.now:
            clock.advance_to(deadline)
        return executed

    def run_epoch(self, end: float, max_events: int | None = None) -> int:
        """Run all events *strictly before* virtual time ``end``.

        This is the lockstep primitive of the sharded simulator
        (:mod:`repro.parallel`): epoch *k* owns the half-open interval
        ``[k*E, (k+1)*E)``, so an event timestamped exactly at the epoch
        boundary belongs to the *next* epoch — it must not run until the
        cross-shard batches for that boundary have been injected.  The
        clock is left exactly at ``end`` so epoch-boundary injections may
        schedule events at ``end`` itself (``call_at(end, ...)`` is legal
        once ``now == end``).  Returns the number of events executed.
        """
        if end < self.clock.now:
            raise ValueError(
                f"epoch end {end} is before now={self.clock.now}"
            )
        executed = 0
        heap = self._heap
        clock = self.clock
        pop = heapq.heappop
        prof = self.profile
        if prof is not None:
            prof.begin_run(epoch=True)
        try:
            while heap:
                entry = heap[0]
                handle = entry[3]
                if handle.cancelled:
                    pop(heap)
                    continue
                when = entry[0]
                if when >= end:
                    break
                if max_events is not None and executed >= max_events:
                    raise RuntimeError(
                        f"run_epoch exceeded max_events={max_events} before {end}"
                    )
                pop(heap)
                clock.advance_to(when)
                self._events_processed += 1
                if prof is None:
                    handle.callback(*handle.args)
                else:
                    t0 = prof.clock()
                    handle.callback(*handle.args)
                    prof.account(
                        handle.callback, t0, prof.clock(), len(heap), when
                    )
                executed += 1
        finally:
            if prof is not None:
                prof.end_run()
        if end > clock.now:
            clock.advance_to(end)
        return executed

    def run_for(self, duration: float, max_events: int | None = None) -> int:
        """Run events for ``duration`` seconds of virtual time."""
        if duration < 0.0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        return self.run_until(self.clock.now + duration, max_events=max_events)

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain.

        Protocols that self-perpetuate (token circulation, beacons) never go
        idle, so this is only useful for bounded scenarios and tests.
        """
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise RuntimeError(f"loop did not go idle within {max_events} events")
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventLoop(now={self.clock.now:.6f}, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )
