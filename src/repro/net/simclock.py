"""Virtual clock for the discrete-event network simulator.

The entire Raincore reproduction runs on simulated time.  The paper's
protocols are driven by timers (token hop interval, HUNGRY timeout,
retransmission timeout, BODYODOR beacon period) and by message arrival
events; both are scheduled against this clock, which only advances when the
event loop dequeues the next event.  Using virtual time makes every scenario
— including the two-second fail-over experiment of paper §3.2 — exactly
reproducible and fast to run.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotonically non-decreasing virtual clock measured in seconds.

    Only the owning :class:`~repro.net.eventloop.EventLoop` should call
    :meth:`advance_to`; all other components read :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises :class:`ValueError` on any attempt to move time backwards,
        which would indicate a scheduling bug.
        """
        if t < self._now:
            raise ValueError(f"time cannot flow backwards: {t} < {self._now}")
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
