"""Simulated network substrate for the Raincore reproduction.

The paper runs on real switched Fast Ethernet with UDP; we substitute a
deterministic discrete-event simulation that exposes the same interface the
protocols consume — an unreliable unicast datagram service plus timers — and
adds controllable fault injection (loss, link cuts, partitions, crashes).
See DESIGN.md §2 for the substitution argument.
"""

from repro.net.adversity import GilbertElliott
from repro.net.datagram import Datagram, DatagramNetwork
from repro.net.eventloop import EventLoop, TimerHandle
from repro.net.simclock import SimClock
from repro.net.stats import CpuModel, NodeStats, StatsRegistry
from repro.net.topology import NodeSite, Segment, Topology, build_switched_cluster

__all__ = [
    "GilbertElliott",
    "Datagram",
    "DatagramNetwork",
    "EventLoop",
    "TimerHandle",
    "SimClock",
    "CpuModel",
    "NodeStats",
    "StatsRegistry",
    "NodeSite",
    "Segment",
    "Topology",
    "build_switched_cluster",
]
