"""Adversarial network conditions beyond independent per-packet loss.

The base :class:`~repro.net.datagram.DatagramNetwork` models the paper's
benign LAN: independent Bernoulli loss, uniform jitter, no duplication.
Real networking elements see worse — and the chaos engine
(:mod:`repro.chaos`) needs to produce worse on demand:

* **Packet duplication** — a switch or a retransmitting driver delivers the
  same frame twice.  UDP explicitly permits this; the session layer must
  suppress it end to end.
* **Gilbert–Elliott burst loss** — losses on real links are correlated:
  a two-state Markov chain alternates between a (nearly) clean *good*
  state and a lossy *bad* state, producing loss bursts whose length is
  geometrically distributed.  This is the classic Gilbert (1960) /
  Elliott (1963) channel model.
* **Delay spikes** — a queue builds somewhere and a packet is suddenly
  delayed by orders of magnitude more than the segment latency (garbage
  collection, a flapping spanning tree, a congested uplink).

All state transitions draw from the event loop's seeded RNG, so adversarial
runs replay deterministically — the property the chaos traces rely on.

Flapping ("gray") NICs are the fourth adversity; they are a *schedule* of
:meth:`~repro.net.topology.Topology.set_nic_up` toggles rather than a
per-packet model, and live on
:meth:`~repro.cluster.faults.FaultInjector.flap_nic`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["GilbertElliott"]


@dataclass(slots=True)
class GilbertElliott:
    """Two-state Markov (Gilbert–Elliott) burst-loss channel.

    Parameters
    ----------
    p_enter_burst:
        Per-packet probability of moving good → bad.
    p_exit_burst:
        Per-packet probability of moving bad → good (mean burst length in
        packets is ``1 / p_exit_burst``).
    loss_good:
        Drop probability while in the good state (usually 0 or tiny).
    loss_bad:
        Drop probability while in the bad state (usually near 1).
    """

    p_enter_burst: float
    p_exit_burst: float
    loss_good: float = 0.0
    loss_bad: float = 1.0
    in_burst: bool = False  #: current channel state (mutates per packet)

    def __post_init__(self) -> None:
        for name in ("p_enter_burst", "p_exit_burst", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")

    def sample(self, rng: random.Random) -> bool:
        """Advance the channel one packet; return True if that packet drops."""
        if self.in_burst:
            if rng.random() < self.p_exit_burst:
                self.in_burst = False
        else:
            if rng.random() < self.p_enter_burst:
                self.in_burst = True
        loss = self.loss_bad if self.in_burst else self.loss_good
        return loss > 0.0 and rng.random() < loss
