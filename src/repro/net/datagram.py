"""Unreliable unicast datagram service — the simulated "UDP" of the paper.

The Raincore Transport Service (paper §2.1) "requires the availability of an
unreliable unicast interface to send and receive packets.  In typical
implementations, it uses UDP."  This module is that interface for the
simulated cluster:

* best-effort: packets may be dropped (segment loss probability, burst-loss
  channels, downed NICs/nodes, blocked pairs, partitions), duplicated
  (segment duplication probability), and reordered by jitter or delay
  spikes — everything UDP permits;
* atomic: a packet arrives whole or not at all — there is no fragmentation
  or corruption in the model, matching the paper's atomic-unicast framing;
* unicast only: a "broadcast" can only be built from N unicasts, which is
  exactly the premise of the paper's overhead analysis (§4.1).

Every send/receive is charged to :class:`~repro.net.stats.NodeStats` so the
benchmarks can report packet and byte overheads per protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

from repro.net.eventloop import EventLoop
from repro.net.stats import StatsRegistry
from repro.net.topology import Topology

__all__ = [
    "Datagram",
    "DatagramNetwork",
    "PacketHandler",
    "TrunkExchange",
    "TRUNK_DELIVERY_PRIORITY",
]

#: Event-loop priority of trunk (inter-shard) deliveries.  Strictly after
#: every same-instant local event, in *all* execution modes — this is what
#: makes the relative order of a trunk arrival and a local timer at one
#: virtual instant independent of how shards are placed onto workers
#: (docs/PARALLEL.md, determinism contract).
TRUNK_DELIVERY_PRIORITY = 1


class Datagram:
    """One packet in flight.

    ``payload`` is any Python object (the protocol layers use message
    dataclasses); ``size`` is its modelled wire size in bytes, reported by
    the message itself so the network does not need to serialize.
    """

    __slots__ = ("src", "dst", "payload", "size")

    def __init__(self, src: str, dst: str, payload: Any, size: int) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Datagram({self.src} -> {self.dst}, {self.size}B, {self.payload!r})"


class PacketHandler(Protocol):
    """Callback signature for datagram arrival at a bound address."""

    def __call__(self, packet: Datagram) -> None: ...  # pragma: no cover


class TrunkExchange(Protocol):
    """Sink for packets sent on trunk (cut) segments.

    The sharded simulator (:mod:`repro.parallel`) installs one via
    :meth:`DatagramNetwork.set_exchange`; it buffers each packet with its
    arrival time and re-injects it — possibly in another worker process —
    at the next epoch boundary via :meth:`DatagramNetwork.deliver_trunk`.
    """

    def submit(self, packet: Datagram, when: float) -> None: ...  # pragma: no cover


class DatagramNetwork:
    """Delivers datagrams between NIC addresses over a :class:`Topology`.

    Parameters
    ----------
    loop:
        The simulation event loop (provides time and the seeded RNG).
    topology:
        Mutable topology consulted *at send time* for reachability and at
        delivery time for destination liveness (a node that crashes while a
        packet is in flight does not receive it).
    stats:
        Registry charged with per-node packet/byte counters.
    """

    def __init__(
        self, loop: EventLoop, topology: Topology, stats: StatsRegistry | None = None
    ) -> None:
        self.loop = loop
        self.topology = topology
        self.stats = stats if stats is not None else StatsRegistry()
        self._handlers: dict[str, PacketHandler] = {}
        self.packets_dropped = 0
        self.packets_delivered = 0
        self.packets_duplicated = 0
        # Optional probe bus (repro.obs): None means observability is off and
        # the per-packet cost is one attribute load + None test.
        self.probe = None
        # Optional wiretap for tests/tracing: called for every send attempt.
        self.trace: Callable[[Datagram, bool], None] | None = None
        # Optional selective filter: return False to drop a packet.  This is
        # the surgical fault-injection hook (e.g. "drop only the ACKs from B
        # to A for 300 ms" — the scenario that manufactures failure-detector
        # false alarms deterministically).  Prefer the stacked add_filter /
        # remove_filter API (surfaced as FaultInjector.drop_matching), which
        # composes; this single-slot attribute is kept for direct wiring.
        self.filter: Callable[[Datagram], bool] | None = None
        self._filters: dict[int, Callable[[Datagram], bool]] = {}
        self._filter_ids = 0
        # Trunk exchange (repro.parallel): packets sent on a segment in
        # self._trunk are handed to self._exchange instead of being
        # scheduled locally.  None/empty means the classic direct path.
        self._exchange: TrunkExchange | None = None
        self._trunk: frozenset[str] = frozenset()
        # (src, dst) -> (topology.version, sender stats, deliverable, segment,
        # receiver stats).  Reachability and the shared-segment scan are pure
        # functions of the topology, which bumps ``version`` on every mutation
        # that can change them; a version mismatch rebuilds the entry.  The
        # segment object itself is live — per-packet adversity knobs (loss,
        # burst, spikes, duplication) are read from it on every send, so fault
        # injectors that tweak those fields in place need no invalidation.
        self._routes: dict[tuple[str, str], tuple] = {}

    # ------------------------------------------------------------------
    # selective drop filters
    # ------------------------------------------------------------------
    def add_filter(self, pred: Callable[[Datagram], bool]) -> int:
        """Install a drop filter; returns a handle for :meth:`remove_filter`.

        ``pred`` returns False for packets that must be dropped.  All
        installed filters apply simultaneously (a packet any filter rejects
        is dropped), so independent fault scenarios compose.
        """
        self._filter_ids += 1
        self._filters[self._filter_ids] = pred
        return self._filter_ids

    def remove_filter(self, handle: int) -> None:
        """Uninstall one filter; unknown handles are ignored (idempotent)."""
        self._filters.pop(handle, None)

    def clear_filters(self) -> None:
        """Remove every stacked filter (the legacy ``filter`` slot too)."""
        self._filters.clear()
        self.filter = None

    def _filtered_out(self, packet: Datagram) -> bool:
        if self.filter is None and not self._filters:
            return False
        if self.filter is not None and not self.filter(packet):
            return True
        return any(not pred(packet) for pred in self._filters.values())

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def set_exchange(
        self, exchange: TrunkExchange | None, trunk_segments: frozenset[str]
    ) -> None:
        """Route sends on ``trunk_segments`` through ``exchange``.

        Every named segment must be deterministic (no loss/jitter/spike/
        duplication/burst): trunk arrival times must be a pure function of
        send time so cross-shard batches replay identically regardless of
        worker placement.  Pass ``None`` to restore the direct path.
        """
        if exchange is not None:
            for name in sorted(trunk_segments):
                seg = self.topology.segment(name)
                if not seg.is_deterministic():
                    raise ValueError(
                        f"trunk segment {name!r} has adversity knobs enabled; "
                        "cut segments must be deterministic (docs/PARALLEL.md)"
                    )
        self._exchange = exchange
        self._trunk = frozenset(trunk_segments) if exchange is not None else frozenset()

    def bind(self, address: str, handler: PacketHandler) -> None:
        """Attach a receive handler to a NIC address (like a UDP socket)."""
        # Rebinding is allowed: a restarted node re-binds its addresses.
        self.topology.owner_of(address)  # raises KeyError if unknown
        self._handlers[address] = handler

    def unbind(self, address: str) -> None:
        self._handlers.pop(address, None)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def _route(self, src: str, dst: str) -> tuple:
        """(Re)build the cached route entry for an address pair."""
        topology = self.topology
        # owner_of raises KeyError for an unknown source, as send always did.
        sender_stats = self.stats.for_node(topology.owner_of(src))
        deliverable = topology.can_deliver(src, dst)
        if deliverable:
            seg = topology.path_params(src, dst)
            receiver_stats = self.stats.for_node(topology.owner_of(dst))
        else:
            seg = None
            receiver_stats = None
        entry = (topology.version, sender_stats, deliverable, seg, receiver_stats)
        self._routes[(src, dst)] = entry
        return entry

    def send(self, src: str, dst: str, payload: Any, size: int) -> None:
        """Best-effort unicast of ``payload`` from ``src`` to ``dst`` NICs.

        Dropped silently (as UDP would) when the path is unavailable or the
        per-packet loss draw fails.  The sender is always charged for the
        packet — the NIC transmitted it regardless of fate.

        The RNG draw sequence is per-packet stable regardless of caching:
        each adversity knob draws iff it is enabled, in a fixed order
        (loss, burst, jitter, spike, duplicate, twin jitter), so a benign
        segment makes no draws at all and seeded traces replay identically.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        packet = Datagram(src, dst, payload, size)
        route = self._routes.get((src, dst))
        if route is None or route[0] != self.topology.version:
            route = self._route(src, dst)
        route[1].packet_sent(size)
        probe = self.probe
        if probe is not None:
            probe.emit(
                route[1].node_id, "net.send", src, dst, type(payload).__name__, size
            )

        if not route[2]:
            self._drop(packet, "unreachable")
            return
        if self._filtered_out(packet):
            self._drop(packet, "filtered")
            return
        seg = route[3]
        if self._exchange is not None and seg.name in self._trunk:
            # Trunk path: deterministic latency (set_exchange validated the
            # segment), canonical epoch-batched delivery.  The exchange
            # re-injects via deliver_trunk at the next epoch boundary —
            # possibly in another worker process.
            if self.trace is not None:
                self.trace(packet, True)
            self._exchange.submit(packet, self.loop.now + seg.latency)
            return
        # Per-segment RNG stream when seeded (sharded workloads), else the
        # loop-global stream (classic single-loop workloads).
        rng = seg.rng
        if rng is None:
            rng = self.loop.rng
        if seg.loss > 0.0 and rng.random() < seg.loss:
            self._drop(packet, "loss")
            return
        if seg.burst is not None and seg.burst.sample(rng):
            self._drop(packet, "burst")
            return
        delay = seg.latency
        if seg.jitter > 0.0:
            delay += rng.random() * seg.jitter
        if seg.spike_prob > 0.0 and rng.random() < seg.spike_prob:
            delay += seg.spike_extra
        if self.trace is not None:
            self.trace(packet, True)
        self.loop.call_later(delay, self._deliver, packet)
        if seg.duplicate > 0.0 and rng.random() < seg.duplicate:
            # The twin takes an independent (jittered) path, so it may
            # arrive before or after the original — duplication and
            # reordering come as a package, exactly as on a real LAN.
            twin_delay = seg.latency
            if seg.jitter > 0.0:
                twin_delay += rng.random() * seg.jitter
            self.packets_duplicated += 1
            if probe is not None:
                probe.emit(
                    route[1].node_id,
                    "net.dup",
                    src,
                    dst,
                    type(payload).__name__,
                    size,
                )
            self.loop.call_later(twin_delay, self._deliver, packet)

    def deliver_trunk(self, packet: Datagram, when: float) -> None:
        """Schedule one exchange-delivered trunk packet for arrival.

        Called by the shard exchange at an epoch boundary, in canonical
        batch order; ``TRUNK_DELIVERY_PRIORITY`` plus the loop's FIFO tie
        sequence preserves exactly that order among same-instant arrivals.

        ``when`` is clamped to the loop's current time: the epoch boundary
        ``(k+1)*E`` can land one ulp above an exact ``send + latency`` sum,
        and that sub-ulp slip must not count as scheduling in the past.
        The clamp is identical in every engine mode (all flush at the same
        boundary floats), so it cannot perturb shard-count invariance.
        """
        now = self.loop.now
        if when < now:
            when = now
        self.loop.call_at(
            when, self._deliver, packet, priority=TRUNK_DELIVERY_PRIORITY
        )

    def _drop(self, packet: Datagram, where: str = "net") -> None:
        self.packets_dropped += 1
        probe = self.probe
        if probe is not None:
            probe.emit(
                self.topology.owner_of(packet.src),
                "net.drop",
                packet.src,
                packet.dst,
                type(packet.payload).__name__,
                packet.size,
                where,
            )
        if self.trace is not None:
            self.trace(packet, False)

    def _deliver(self, packet: Datagram) -> None:
        # Re-check liveness at arrival time: the destination may have
        # crashed, been unplugged, or been partitioned while in flight.
        dst = packet.dst
        probe = self.probe
        route = self._routes.get((packet.src, dst))
        if route is None or route[0] != self.topology.version:
            route = self._route(packet.src, dst)
        if not route[2]:
            self.packets_dropped += 1
            if probe is not None:
                probe.emit(
                    self.topology.owner_of(packet.src),
                    "net.drop",
                    packet.src,
                    dst,
                    type(packet.payload).__name__,
                    packet.size,
                    "dst-down",
                )
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.packets_dropped += 1
            if probe is not None:
                probe.emit(
                    self.topology.owner_of(packet.src),
                    "net.drop",
                    packet.src,
                    dst,
                    type(packet.payload).__name__,
                    packet.size,
                    "unbound",
                )
            return
        route[4].packet_received(packet.size)
        self.packets_delivered += 1
        if probe is not None:
            probe.emit(
                route[4].node_id,
                "net.deliver",
                packet.src,
                dst,
                type(packet.payload).__name__,
                packet.size,
            )
        handler(packet)
