"""Per-node accounting: packets, bytes, and CPU task-switches.

The paper's central performance argument (§1 item 2, §4.1) is measured in
*CPU task-switching actions*: the number of times a networking element's CPU
must leave the traffic-forwarding fast path to service the group
communication task.  Raincore needs one such wakeup per token arrival — L per
second for a token doing L ring roundtrips per second — while a
broadcast-emulation protocol needs one per protocol packet, at least M·N per
second when each of N nodes multicasts M messages per second.

Accounting convention (DESIGN.md §6.5)
--------------------------------------
* ``task_switch()`` is charged when the group-communication task is woken.
  Events that arrive while the GC task is already awake (same virtual
  instant, same wakeup batch) are *not* charged again; the protocol layers
  call :meth:`NodeStats.gc_wakeup` once per distinct wakeup.
* Every datagram handed to / received from the network is counted with its
  payload size.

The :class:`CpuModel` converts wakeups and per-packet work into CPU-seconds
so that the Rainwall benchmark can report "Rainwall CPU usage below 1%"
(paper §4.2) from first principles instead of asserting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NodeStats", "CpuModel", "StatsRegistry"]


@dataclass
class CpuModel:
    """Cost model translating protocol activity into CPU-seconds.

    Defaults are loosely calibrated to the paper's testbed class (late-90s
    single-CPU workstation): a task switch plus protocol handling costs tens
    of microseconds, per-packet handling a few microseconds.
    """

    task_switch_cost: float = 30e-6  #: seconds per GC task wakeup
    per_packet_cost: float = 5e-6  #: seconds per protocol packet sent/received
    per_byte_cost: float = 2e-9  #: seconds per protocol payload byte

    def gc_cpu_seconds(self, stats: "NodeStats") -> float:
        """Total CPU-seconds consumed by group communication on this node."""
        return (
            stats.task_switches * self.task_switch_cost
            + (stats.packets_sent + stats.packets_received) * self.per_packet_cost
            + (stats.bytes_sent + stats.bytes_received) * self.per_byte_cost
        )


@dataclass
class NodeStats:
    """Counters for one node's group-communication activity."""

    node_id: str = ""
    packets_sent: int = 0
    packets_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    task_switches: int = 0
    messages_multicast: int = 0
    messages_delivered: int = 0
    # Timestamp of the wakeup batch currently charged, used to coalesce
    # same-instant GC events into a single task switch.
    _last_wakeup_at: float | None = field(default=None, repr=False)

    def packet_sent(self, nbytes: int) -> None:
        self.packets_sent += 1
        self.bytes_sent += nbytes

    def packet_received(self, nbytes: int) -> None:
        self.packets_received += 1
        self.bytes_received += nbytes

    def gc_wakeup(self, now: float) -> bool:
        """Charge a task switch unless one was already charged at ``now``.

        Returns ``True`` when a new task switch was charged.  Two protocol
        events landing at the same virtual instant (e.g. a token carrying
        many piggybacked messages) model a single batched wakeup of the GC
        task, which is exactly the batching the paper credits Raincore for.
        """
        if self._last_wakeup_at is not None and self._last_wakeup_at == now:
            return False
        self._last_wakeup_at = now
        self.task_switches += 1
        return True

    def reset(self) -> None:
        """Zero all counters (used between benchmark warm-up and measure)."""
        self.packets_sent = 0
        self.packets_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.task_switches = 0
        self.messages_multicast = 0
        self.messages_delivered = 0
        self._last_wakeup_at = None


class StatsRegistry:
    """Registry mapping node id → :class:`NodeStats` for one simulation.

    Cluster-wide aggregates used by the benchmark harness live here so every
    experiment reports them the same way.
    """

    def __init__(self) -> None:
        self._stats: dict[str, NodeStats] = {}

    def for_node(self, node_id: str) -> NodeStats:
        """Return (creating if needed) the stats record for ``node_id``."""
        if node_id not in self._stats:
            self._stats[node_id] = NodeStats(node_id=node_id)
        return self._stats[node_id]

    def __iter__(self) -> "Iterator[NodeStats]":
        return iter(self._stats.values())

    def __len__(self) -> int:
        return len(self._stats)

    def total(self, attr: str) -> int:
        """Sum of one counter attribute across all nodes."""
        return sum(getattr(s, attr) for s in self._stats.values())

    def per_node(self, attr: str) -> dict[str, int]:
        """Mapping node id → counter value."""
        return {nid: getattr(s, attr) for nid, s in self._stats.items()}

    def reset(self) -> None:
        for s in self._stats.values():
            s.reset()
