"""Cluster topology: nodes, NICs, network segments, link faults, partitions.

The paper's cluster is a set of networking elements on one or more switched
LAN segments.  Raincore's Transport Service explicitly supports *multiple
physical addresses per node* (paper §2.1 item 2) — i.e. several NICs on
redundant segments — to make partitions less likely.  This module models:

* **Node sites** — a node id owning one or more NIC addresses, with an
  up/down flag (node crash/recovery).
* **Segments** — broadcast domains (switches) with per-segment latency,
  jitter and loss probability; two NICs can exchange datagrams only if they
  share a segment.
* **Link faults** — individual NIC detachment (cable unplug, the paper's
  §3.2 fail-over experiment) and blocked address pairs (asymmetric or
  pairwise link failure, the paper's §2.3 "link between A and B fails"
  example).
* **Partitions** — named splits of a segment into isolated halves
  (split-brain injection for the §2.4 merge protocol).

All random draws (loss, jitter) use the event loop's seeded RNG, so faulty
runs replay deterministically.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.net.adversity import GilbertElliott

__all__ = ["Segment", "NodeSite", "Topology", "derive_rng_seed"]


def derive_rng_seed(seed: int, name: str) -> int:
    """Derive a per-entity RNG seed from a run seed and a stable name.

    Uses SHA-256 rather than ``hash()`` (which is salted per process) so
    every shard worker process derives the identical stream — the
    foundation of the sharded simulator's cross-process determinism
    (docs/PARALLEL.md).
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class Segment:
    """One switched LAN segment.

    Parameters mirror what the protocols can observe: propagation latency
    (plus uniform jitter) and independent per-packet loss probability.
    ``capacity_mbps`` is metadata consumed by the flow-level traffic model
    (paper §4.1's 100 Mbps Fast Ethernet arithmetic); the datagram layer
    itself does not rate-limit protocol packets, whose bandwidth is
    negligible by design.

    The adversity knobs (``duplicate``, ``spike_prob``/``spike_extra``,
    ``burst``) default to off, preserving the paper's benign-LAN model;
    the chaos engine flips them mid-run through
    :class:`~repro.cluster.faults.FaultInjector`.
    """

    name: str
    latency: float = 100e-6  #: one-way propagation delay in seconds
    jitter: float = 20e-6  #: uniform extra delay in [0, jitter)
    loss: float = 0.0  #: independent per-packet drop probability
    capacity_mbps: float = 100.0  #: Fast Ethernet per the paper's testbed
    duplicate: float = 0.0  #: probability a delivered packet arrives twice
    spike_prob: float = 0.0  #: probability of a delay spike per packet
    spike_extra: float = 0.0  #: extra one-way delay of a spiked packet
    burst: GilbertElliott | None = None  #: correlated (burst) loss channel
    attached: set[str] = field(default_factory=set)  #: NIC addresses on segment
    #: Optional dedicated RNG stream for this segment's per-packet draws.
    #: When set, the datagram layer draws loss/jitter/spike/duplication from
    #: it instead of the loop-global RNG, making the draw sequence a function
    #: of this segment's own packet order alone — the property that lets the
    #: sharded simulator (repro.parallel) replay byte-identically regardless
    #: of how segments are grouped onto workers.  Seed via
    #: :meth:`Topology.seed_segment_rngs`.
    rng: random.Random | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "spike_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.latency < 0 or self.jitter < 0 or self.spike_extra < 0:
            raise ValueError("latency, jitter and spike_extra must be non-negative")

    def clear_adversities(self) -> None:
        """Reset duplication, spikes and burst loss to the benign model."""
        self.duplicate = 0.0
        self.spike_prob = 0.0
        self.spike_extra = 0.0
        self.burst = None

    def is_deterministic(self) -> bool:
        """True when no per-packet RNG draw can ever happen on this segment.

        A deterministic segment delivers every packet after exactly
        ``latency`` seconds.  Only such segments may be cut by the shard
        partitioner: a cross-shard draw would couple the shards' RNG
        streams and break shard-count-invariant replay.
        """
        return (
            self.loss == 0.0
            and self.jitter == 0.0
            and self.duplicate == 0.0
            and self.spike_prob == 0.0
            and self.burst is None
        )


@dataclass
class NodeSite:
    """A node's physical presence: its NICs and liveness."""

    node_id: str
    addresses: list[str] = field(default_factory=list)
    up: bool = True


class Topology:
    """Mutable cluster topology with fault-injection hooks."""

    def __init__(self) -> None:
        self._segments: dict[str, Segment] = {}
        self._sites: dict[str, NodeSite] = {}
        self._addr_owner: dict[str, str] = {}  # address -> node_id
        self._addr_up: dict[str, bool] = {}  # NIC liveness (cable state)
        self._blocked_pairs: set[frozenset[str]] = set()  # address pairs
        self._partition_groups: dict[str, int] = {}  # node_id -> group index
        #: Bumped on every mutation that can change reachability; consumers
        #: (the datagram layer's route cache) invalidate on mismatch.
        self.version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_segment(self, segment: Segment) -> Segment:
        if segment.name in self._segments:
            raise ValueError(f"duplicate segment {segment.name!r}")
        self._segments[segment.name] = segment
        self.version += 1
        return segment

    def add_node(self, node_id: str) -> NodeSite:
        if node_id in self._sites:
            raise ValueError(f"duplicate node {node_id!r}")
        site = NodeSite(node_id)
        self._sites[node_id] = site
        return site

    def attach(self, node_id: str, address: str, segment_name: str) -> None:
        """Give ``node_id`` a NIC with ``address`` on ``segment_name``."""
        if node_id not in self._sites:
            raise KeyError(f"unknown node {node_id!r}")
        if segment_name not in self._segments:
            raise KeyError(f"unknown segment {segment_name!r}")
        if address in self._addr_owner:
            raise ValueError(f"address {address!r} already in use")
        self._sites[node_id].addresses.append(address)
        self._addr_owner[address] = node_id
        self._addr_up[address] = True
        self._segments[segment_name].attached.add(address)
        self.version += 1

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def segment(self, name: str) -> Segment:
        return self._segments[name]

    def segments(self) -> list[Segment]:
        return list(self._segments.values())

    def site(self, node_id: str) -> NodeSite:
        return self._sites[node_id]

    def nodes(self) -> list[str]:
        return list(self._sites)

    def owner_of(self, address: str) -> str:
        """Node id owning a NIC address."""
        return self._addr_owner[address]

    def addresses_of(self, node_id: str) -> list[str]:
        """All NIC addresses of a node, in attach order."""
        return list(self._sites[node_id].addresses)

    def segment_of(self, address: str) -> Segment:
        for seg in self._segments.values():
            if address in seg.attached:
                return seg
        raise KeyError(f"address {address!r} not attached to any segment")

    def nodes_on_segment(self, name: str) -> tuple[str, ...]:
        """Sorted node ids with at least one NIC on segment ``name``."""
        seg = self._segments[name]
        return tuple(sorted({self._addr_owner[addr] for addr in seg.attached}))

    # ------------------------------------------------------------------
    # partitioning primitives (consumed by repro.parallel)
    # ------------------------------------------------------------------
    def seed_segment_rngs(self, seed: int) -> None:
        """Give every segment its own RNG stream derived from ``seed``.

        Streams are keyed by segment *name* (sorted order, SHA-256
        derivation), so two processes building the same topology with the
        same seed hold identical streams — see :func:`derive_rng_seed`.
        """
        for name in sorted(self._segments):
            self._segments[name].rng = random.Random(derive_rng_seed(seed, name))

    def connected_components(
        self, exclude_segments: tuple[str, ...] = ()
    ) -> tuple[tuple[str, ...], ...]:
        """Node components under the segment graph minus ``exclude_segments``.

        Two nodes are connected when they share a segment not listed in
        ``exclude_segments``.  Components and their members are sorted, so
        the result is deterministic and identical across processes.  Nodes
        attached to no remaining segment form singleton components.
        """
        parent: dict[str, str] = {node_id: node_id for node_id in self._sites}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        excluded = set(exclude_segments)
        for name in sorted(self._segments):
            if name in excluded:
                continue
            members = self.nodes_on_segment(name)
            for other in members[1:]:
                ra, rb = find(members[0]), find(other)
                if ra != rb:
                    # Union by lexicographic root for determinism.
                    lo, hi = (ra, rb) if ra < rb else (rb, ra)
                    parent[hi] = lo
        groups: dict[str, list[str]] = {}
        for node_id in sorted(self._sites):
            groups.setdefault(find(node_id), []).append(node_id)
        return tuple(tuple(groups[root]) for root in sorted(groups))

    def min_cut_latency(self, segment_names: tuple[str, ...]) -> float:
        """Minimum one-way latency over the named (cut) segments.

        This is the sharded simulator's *lookahead bound*: a packet sent on
        any cut segment during epoch ``k`` cannot arrive before epoch
        ``k+1`` when the epoch length is this value, so each shard can run
        an epoch to completion without seeing remote events.
        """
        if not segment_names:
            raise ValueError("no cut segments: min_cut_latency is undefined")
        return min(self._segments[name].latency for name in segment_names)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def set_node_up(self, node_id: str, up: bool) -> None:
        """Crash (``False``) or recover (``True``) a whole node."""
        self._sites[node_id].up = up
        self.version += 1

    def set_nic_up(self, address: str, up: bool) -> None:
        """Unplug / replug one NIC's cable."""
        if address not in self._addr_up:
            raise KeyError(f"unknown address {address!r}")
        self._addr_up[address] = up
        self.version += 1

    def nic_up(self, address: str) -> bool:
        return self._addr_up[address]

    def block_pair(self, addr_a: str, addr_b: str) -> None:
        """Cut the (bidirectional) path between two NIC addresses only.

        This reproduces the paper's §2.3 scenario where the A–B link fails
        while both nodes stay reachable through other peers.
        """
        self._blocked_pairs.add(frozenset((addr_a, addr_b)))
        self.version += 1

    def unblock_pair(self, addr_a: str, addr_b: str) -> None:
        self._blocked_pairs.discard(frozenset((addr_a, addr_b)))
        self.version += 1

    def block_node_pair(self, node_a: str, node_b: str) -> None:
        """Block every NIC pair between two nodes."""
        for a in self.addresses_of(node_a):
            for b in self.addresses_of(node_b):
                self.block_pair(a, b)

    def unblock_node_pair(self, node_a: str, node_b: str) -> None:
        for a in self.addresses_of(node_a):
            for b in self.addresses_of(node_b):
                self.unblock_pair(a, b)

    def partition(self, groups: list[list[str]]) -> None:
        """Split the cluster: nodes may only talk within their group.

        ``groups`` must cover disjoint node sets; nodes not listed stay
        reachable from everyone (they form an implicit extra group only for
        nodes that appear nowhere).
        """
        assignment: dict[str, int] = {}
        for idx, group in enumerate(groups):
            for node_id in group:
                if node_id in assignment:
                    raise ValueError(f"node {node_id!r} listed in two groups")
                if node_id not in self._sites:
                    raise KeyError(f"unknown node {node_id!r}")
                assignment[node_id] = idx
        self._partition_groups = assignment
        self.version += 1

    def heal_partition(self) -> None:
        """Remove any partition; blocked pairs are unaffected."""
        self._partition_groups = {}
        self.version += 1

    def clear_link_faults(self) -> None:
        """Heal every link-level fault at once: partitions gone, all
        blocked pairs unblocked, every NIC replugged, every per-segment
        adversity reset.  Node up/down state is untouched — recovering
        crashed nodes is a protocol action, not a cable repair."""
        self._partition_groups = {}
        self._blocked_pairs.clear()
        for address in self._addr_up:
            self._addr_up[address] = True
        for seg in self._segments.values():
            seg.clear_adversities()
        self.version += 1

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def can_deliver(self, src_addr: str, dst_addr: str) -> bool:
        """True when a datagram from ``src_addr`` can reach ``dst_addr`` now.

        Checks, in order: both NICs exist and are plugged in, both owning
        nodes are up, the NICs share a segment, the address pair is not
        blocked, and the owners are not separated by a partition.
        Loss is *not* applied here — it is a random per-packet draw done by
        the datagram layer.
        """
        if src_addr not in self._addr_owner or dst_addr not in self._addr_owner:
            return False
        if not (self._addr_up[src_addr] and self._addr_up[dst_addr]):
            return False
        src_node = self._addr_owner[src_addr]
        dst_node = self._addr_owner[dst_addr]
        if not (self._sites[src_node].up and self._sites[dst_node].up):
            return False
        if frozenset((src_addr, dst_addr)) in self._blocked_pairs:
            return False
        if self._partition_groups:
            ga = self._partition_groups.get(src_node)
            gb = self._partition_groups.get(dst_node)
            if ga is not None and gb is not None and ga != gb:
                return False
        seg = self._shared_segment(src_addr, dst_addr)
        return seg is not None

    def _shared_segment(self, addr_a: str, addr_b: str) -> Segment | None:
        for seg in self._segments.values():
            if addr_a in seg.attached and addr_b in seg.attached:
                return seg
        return None

    def path_params(self, src_addr: str, dst_addr: str) -> Segment:
        """Segment whose latency/loss applies to this address pair."""
        seg = self._shared_segment(src_addr, dst_addr)
        if seg is None:
            raise KeyError(f"{src_addr!r} and {dst_addr!r} share no segment")
        return seg


def build_switched_cluster(
    topology: Topology,
    node_ids: list[str],
    *,
    segments: int = 1,
    latency: float = 100e-6,
    jitter: float = 20e-6,
    loss: float = 0.0,
    capacity_mbps: float = 100.0,
) -> dict[str, list[str]]:
    """Convenience builder: ``segments`` redundant switched LANs, one NIC per
    node per segment.  Returns node id → address list.

    Addresses are formatted ``"<node>@net<k>"`` so traces are readable.
    """
    if segments < 1:
        raise ValueError("need at least one segment")
    for k in range(segments):
        topology.add_segment(
            Segment(
                name=f"net{k}",
                latency=latency,
                jitter=jitter,
                loss=loss,
                capacity_mbps=capacity_mbps,
            )
        )
    addresses: dict[str, list[str]] = {}
    for node_id in node_ids:
        topology.add_node(node_id)
        addrs = []
        for k in range(segments):
            addr = f"{node_id}@net{k}"
            topology.attach(node_id, addr, f"net{k}")
            addrs.append(addr)
        addresses[node_id] = addrs
    return addresses


__all__.append("build_switched_cluster")
