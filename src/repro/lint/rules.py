"""The raincheck rule catalogue.

Three families (full prose in docs/DETERMINISM.md):

* **RC1xx determinism** — the replay contract: no wall clock, no ambient
  entropy, all randomness via an explicitly seeded ``random.Random``, no
  iteration over unordered sets.
* **RC2xx protocol** — structural invariants of the session service:
  exhaustive dispatch of registered session messages, scheduling/socket
  primitives contained to ``repro.net``/``repro.runtime``, no poking at
  ``EventLoop`` internals from protocol code.
* **RC3xx hot-path hygiene** — per-packet/per-hop dataclasses carry
  ``__slots__``; no ``copy.deepcopy`` on the token/datagram hot path.
* **RC4xx observability** — probe emissions stay cheap and deterministic:
  no eager string formatting in ``probe.emit(...)`` argument lists (the
  probe catalogue formats lazily at render time), probe events are
  stamped with sim time by the bus alone — no hand-built
  :class:`~repro.obs.probe.ProbeEvent` outside ``repro/obs/``, no ``at=``
  smuggled into an emit call — and contract-monitor rules registered via
  ``@contract_rule`` stay pure functions of their window (no wall clock,
  no ambient state, no mutation).

RC0xx are meta findings emitted by the engine itself (parse failures and
pragma hygiene); they are registered here so ``--list-rules`` and pragma
validation know about them, but they have no checker function and are
never suppressible.

Rules are generators: file-scope rules take a :class:`FileContext` and
yield ``(line, col, message)``; project-scope rules take a
:class:`Project` and yield ``(path, line, col, message)``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.lint.model import FileContext, Project

__all__ = ["Rule", "RULES", "rule", "FileContext", "Project"]

FileFinding = tuple[int, int, str]
ProjectFinding = tuple[str, int, int, str]


@dataclass(frozen=True)
class Rule:
    """One registered rule: id, one-line summary, scope, checker."""

    id: str
    summary: str
    scope: str  #: "file" | "project" | "meta"
    func: Callable


RULES: dict[str, Rule] = {}


def rule(rule_id: str, summary: str, scope: str = "file"):
    """Register a checker under ``rule_id`` (decorator)."""

    def deco(fn: Callable) -> Callable:
        RULES[rule_id] = Rule(rule_id, summary, scope, fn)
        return fn

    return deco


def _meta(rule_id: str, summary: str) -> None:
    RULES[rule_id] = Rule(rule_id, summary, "meta", lambda _: ())


_meta("RC000", "file does not parse")
_meta("RC001", "malformed pragma or unknown rule id")
_meta("RC002", "suppression pragma without a justification")
_meta("RC003", "suppression pragma that suppressed nothing (strict)")


# ----------------------------------------------------------------------
# RC1xx — determinism
# ----------------------------------------------------------------------
#: Wall-clock reads.  Only repro/perf.py (the wall-clock benchmark harness,
#: whose entire purpose is measuring real elapsed time) may use these.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)
#: The only modules allowed to read the wall clock: the perf harness, the
#: hot-path profiler, and the raintap telemetry plane (shipper, collector,
#: worker) — all live on the non-deterministic wall-clock side of the
#: fence and never feed the *simulated* probe stream (docs/PROFILING.md,
#: docs/TELEMETRY.md).
_CLOCK_ALLOWED_MODULES = (
    "repro/perf.py",
    "repro/obs/prof.py",
    "repro/runtime/telemetry.py",
    "repro/runtime/collector.py",
    "repro/runtime/worker.py",
)

#: Ambient entropy: different on every run, ruinous to replay.  Note that
#: uuid3/uuid5 (name-based, deterministic in their inputs) are allowed.
_ENTROPY = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    }
)


@rule("RC101", "wall-clock read outside the wall-clock allowlist")
def check_wall_clock(ctx: FileContext) -> Iterator[FileFinding]:
    if ctx.is_module(*_CLOCK_ALLOWED_MODULES):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = ctx.resolve(node.func)
            if name in _WALL_CLOCK:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"wall-clock call {name}() breaks replay determinism; "
                    "use EventLoop virtual time (loop.now) — real-time "
                    "measurement belongs in repro/perf.py or "
                    "repro/obs/prof.py",
                )


@rule("RC102", "ambient entropy source (urandom/uuid4/secrets/...)")
def check_entropy(ctx: FileContext) -> Iterator[FileFinding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = ctx.resolve(node.func)
            if name in _ENTROPY:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{name}() draws ambient entropy; all randomness must "
                    "come from a seeded random.Random (EventLoop.rng)",
                )


@rule("RC103", "module-level random.* call (unseeded global RNG)")
def check_module_random(ctx: FileContext) -> Iterator[FileFinding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name not in ("Random",):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"from random import {alias.name} binds the global "
                        "(process-seeded) RNG; import random.Random and "
                        "seed it explicitly",
                    )
        elif isinstance(node, ast.Call):
            name = ctx.resolve(node.func)
            if (
                name is not None
                and name.startswith("random.")
                and name not in ("random.Random", "random.SystemRandom")
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{name}() uses the global RNG whose state is shared "
                    "and process-seeded; draw from a seeded random.Random "
                    "(in simulation code: EventLoop.rng)",
                )


@rule("RC104", "random.Random() constructed without an explicit seed")
def check_unseeded_random(ctx: FileContext) -> Iterator[FileFinding]:
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and ctx.resolve(node.func) == "random.Random"
            and not node.args
            and not node.keywords
        ):
            yield (
                node.lineno,
                node.col_offset,
                "random.Random() without a seed is seeded from the OS; "
                "pass an explicit seed so runs replay",
            )


def _is_unordered(node: ast.AST, ctx: FileContext) -> bool:
    """Syntactically-recognizable unordered set expression."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve(node.func) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_unordered(node.left, ctx) or _is_unordered(node.right, ctx)
    return False


@rule("RC105", "iteration over an unordered set expression")
def check_set_iteration(ctx: FileContext) -> Iterator[FileFinding]:
    def finding(node: ast.AST) -> FileFinding:
        return (
            node.lineno,
            node.col_offset,
            "iterating a set draws on hash order, which varies across "
            "processes (PYTHONHASHSEED) — wrap in sorted(...) before it "
            "can feed scheduling or serialization order",
        )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For) and _is_unordered(node.iter, ctx):
            yield finding(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in node.generators:
                if _is_unordered(gen.iter, ctx):
                    yield finding(gen.iter)
        elif (
            isinstance(node, ast.Call)
            and ctx.resolve(node.func) in ("list", "tuple", "enumerate")
            and node.args
            and _is_unordered(node.args[0], ctx)
        ):
            yield finding(node)


# ----------------------------------------------------------------------
# RC2xx — protocol invariants
# ----------------------------------------------------------------------
def _isinstance_targets(fn: ast.FunctionDef) -> set[str]:
    """Class names tested with isinstance() anywhere inside ``fn``."""
    targets: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            second = node.args[1]
            elts = second.elts if isinstance(second, ast.Tuple) else [second]
            for elt in elts:
                if isinstance(elt, ast.Name):
                    targets.add(elt.id)
                elif isinstance(elt, ast.Attribute):
                    targets.add(elt.attr)
    return targets


@rule(
    "RC201",
    "registered session message without an isinstance arm in a _receive "
    "handler",
    scope="project",
)
def check_exhaustive_dispatch(project: Project) -> Iterator[ProjectFinding]:
    """Every ``@session_message`` class must be dispatched somewhere.

    The registry lives in repro/transport/messages.py; the dispatchers are
    the functions named ``_receive`` (the conventional transport-delivery
    callback installed via ``set_receiver``).  A message that is registered
    but never matched would be silently dropped by every receiver — the
    session layer tolerates garbage, so this failure mode is invisible at
    runtime and must be caught statically.
    """
    registered: list[tuple[str, str, int, int]] = []
    handled: set[str] = set()
    for ctx in project.files:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                for deco in node.decorator_list:
                    name = ctx.resolve(deco)
                    if name is not None and name.split(".")[-1] == (
                        "session_message"
                    ):
                        registered.append(
                            (node.name, ctx.path, node.lineno, node.col_offset)
                        )
            elif isinstance(node, ast.FunctionDef) and node.name == "_receive":
                handled |= _isinstance_targets(node)
    for cls_name, path, line, col in registered:
        if cls_name not in handled:
            yield (
                path,
                line,
                col,
                f"session message {cls_name} is registered but no _receive "
                "handler has an isinstance arm for it; it would be dropped "
                "as garbage at every receiver",
            )


@rule("RC202", "direct heapq use outside repro/net and repro/runtime")
def check_heapq_containment(ctx: FileContext) -> Iterator[FileFinding]:
    if ctx.in_dir("repro/net/", "repro/runtime/"):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            names = [a.name for a in node.names if a.name == "heapq"]
        elif isinstance(node, ast.ImportFrom):
            names = ["heapq"] if node.module == "heapq" else []
        else:
            continue
        if names:
            yield (
                node.lineno,
                node.col_offset,
                "event ordering is owned by EventLoop's (time, priority, "
                "seq) heap; schedule through the loop instead of building "
                "a private heapq here",
            )


@rule("RC203", "direct socket use outside repro/runtime")
def check_socket_containment(ctx: FileContext) -> Iterator[FileFinding]:
    if ctx.in_dir("repro/runtime/"):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            names = [a.name for a in node.names if a.name == "socket"]
        elif isinstance(node, ast.ImportFrom):
            names = ["socket"] if node.module == "socket" else []
        else:
            continue
        if names:
            yield (
                node.lineno,
                node.col_offset,
                "real I/O lives behind repro/runtime; simulation and "
                "protocol code must stay on the DatagramNetwork model",
            )


#: EventLoop/SimClock internals that only the loop itself may touch.
_LOOP_PRIVATE_ATTRS = frozenset({"_heap", "_pop_live"})


@rule("RC204", "EventLoop/SimClock internals touched outside repro/net")
def check_loop_internals(ctx: FileContext) -> Iterator[FileFinding]:
    if ctx.in_dir("repro/net/"):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute) and node.attr in _LOOP_PRIVATE_ATTRS:
            yield (
                node.lineno,
                node.col_offset,
                f"accessing .{node.attr} reaches into the EventLoop's "
                "private heap; use call_at/call_later/peek_time",
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "advance_to"
        ):
            yield (
                node.lineno,
                node.col_offset,
                "advance_to() moves the virtual clock out from under the "
                "event heap; time advances only by running events "
                "(run_until/run_for/step)",
            )


#: Modules whose classes buffer protocol data and therefore must bound it
#: (docs/RESYNC.md): the Data Service replicas and the reliable transport.
_BOUNDED_BUFFER_DIRS = ("repro/data/",)
_BOUNDED_BUFFER_MODULES = ("repro/transport/reliable.py",)

#: Method calls on ``self.<attr>`` that shrink or empty the buffer.
_PRUNE_METHODS = frozenset(
    {"clear", "pop", "popleft", "popitem", "remove", "discard"}
)


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` → ``"X"``; anything else → None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _bounded_deque_call(node: ast.AST) -> bool:
    """True for ``deque(..., maxlen=<non-None>)`` constructions."""
    if not (isinstance(node, ast.Call) and node.keywords):
        return False
    target = node.func
    name = target.attr if isinstance(target, ast.Attribute) else (
        target.id if isinstance(target, ast.Name) else None
    )
    if name != "deque":
        return False
    return any(
        kw.arg == "maxlen"
        and not (isinstance(kw.value, ast.Constant) and kw.value.value is None)
        for kw in node.keywords
    )


@rule("RC205", "buffer append without a reachable prune path")
def check_buffer_prune_path(ctx: FileContext) -> Iterator[FileFinding]:
    """Every buffering append in the data/transport layers must be prunable.

    The bounded-state resync work (docs/RESYNC.md) turns "buffers grow
    until something crashes" into a static finding: inside ``repro/data/``
    and the reliable transport, any class that does ``self.X.append(...)``
    must also give ``self.X`` a prune path — a shrink call (``clear`` /
    ``pop`` / ``popleft`` / ``remove`` / ...), a ``del self.X[...]``, a
    reassignment outside ``__init__``, or construction as a bounded
    ``deque(maxlen=...)``.  A class that only ever appends is exactly the
    unbounded-log bug class this PR's protocol machinery exists to kill.
    """
    if not (
        ctx.in_dir(*_BOUNDED_BUFFER_DIRS)
        or ctx.is_module(*_BOUNDED_BUFFER_MODULES)
    ):
        return
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        appends: dict[str, tuple[int, int]] = {}
        pruned: set[str] = set()
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            in_init = fn.name == "__init__"
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    attr = _self_attr(node.func.value)
                    if attr is None:
                        continue
                    if node.func.attr == "append":
                        appends.setdefault(
                            attr, (node.lineno, node.col_offset)
                        )
                    elif node.func.attr in _PRUNE_METHODS:
                        pruned.add(attr)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        base = (
                            target.value
                            if isinstance(target, ast.Subscript)
                            else target
                        )
                        attr = _self_attr(base)
                        if attr is not None:
                            pruned.add(attr)
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    value = node.value
                    for target in targets:
                        base = (
                            target.value
                            if isinstance(target, ast.Subscript)
                            else target
                        )
                        attr = _self_attr(base)
                        if attr is None:
                            continue
                        if value is not None and _bounded_deque_call(value):
                            pruned.add(attr)  # bounded by construction
                        elif not in_init:
                            pruned.add(attr)  # rebind/splice = prune path
        for attr, (line, col) in sorted(appends.items()):
            if attr not in pruned:
                yield (
                    line,
                    col,
                    f"{cls.name}.{attr} is appended to but never pruned: "
                    "give it a shrink path (clear/pop/del/reassignment "
                    "outside __init__) or bound it with deque(maxlen=...) "
                    "— unbounded buffers break the resync byte budget",
                )


#: Names that conventionally hold collections of per-shard objects in
#: ``repro/parallel/``.  Reaching *through* one of these into a shard's
#: state is exactly the cross-shard access the exchange exists to forbid.
_SHARD_COLLECTIONS = frozenset(
    {"shards", "workers", "peers", "_shards", "_workers", "_peers"}
)

#: Terminal method names that mutate shard state or schedule into a
#: shard's loop when reached through a shard collection.
_CROSS_SHARD_MUTATORS = frozenset(
    {
        "call_at",
        "call_later",
        "send",
        "submit",
        "bind",
        "unbind",
        "crash",
        "start_new_group",
        "start_joining",
        "multicast",
        "set_eligible",
    }
)


def _shard_subscript_in_chain(node: ast.AST) -> bool:
    """True if an attribute/subscript chain passes through ``<shards>[i]``."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            base = node.value
            name = None
            if isinstance(base, ast.Name):
                name = base.id
            elif isinstance(base, ast.Attribute):
                name = base.attr
            if name in _SHARD_COLLECTIONS:
                return True
            node = base
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return False


def _rc206_findings_in(body: list[ast.stmt]) -> Iterator[FileFinding]:
    for stmt in body:
        if isinstance(stmt, ast.ClassDef):
            if not stmt.name.endswith("Exchange"):
                yield from _rc206_findings_in(stmt.body)
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _CROSS_SHARD_MUTATORS and _shard_subscript_in_chain(
                    node.func.value
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f".{node.func.attr}() reached through a shard "
                        "collection subscript mutates another shard "
                        "directly; cross-shard effects must ride the "
                        "epoch exchange (submit/deliver_trunk)",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    # Only attribute stores past the subscript count:
                    # ``self.workers[i] = proc`` builds the collection and
                    # stays legal; ``self.workers[i].node.x = 1`` mutates
                    # the shard behind the exchange's back.
                    if isinstance(target, ast.Attribute) and _shard_subscript_in_chain(
                        target.value
                    ):
                        yield (
                            target.lineno,
                            target.col_offset,
                            "assignment into another shard's object "
                            "through a shard collection subscript; "
                            "cross-shard state changes must ride the "
                            "epoch exchange",
                        )


@rule("RC206", "direct cross-shard state access outside the exchange path")
def check_cross_shard_access(ctx: FileContext) -> Iterator[FileFinding]:
    """No reaching into another shard's loop/network/nodes directly.

    Inside ``repro/parallel/`` the only sanctioned way for one shard to
    affect another is the epoch exchange (``submit`` at send time,
    ``deliver_trunk`` at the boundary): it is what keeps traces
    shard-count invariant and what the process engine can actually ship
    over a pipe.  Code that holds a collection of shard objects
    (``shards``/``workers``/``peers``) and calls scheduling or protocol
    mutators through it — ``self.shards[i].loop.call_at(...)``,
    ``workers[k].network.send(...)`` — or assigns into a shard's objects
    bypasses that path.  Exchange classes themselves (``*Exchange``) are
    exempt: they *are* the sanctioned path.
    """
    if not ctx.in_dir("repro/parallel/"):
        return
    yield from _rc206_findings_in(ctx.tree.body)


# ----------------------------------------------------------------------
# RC3xx — hot-path hygiene
# ----------------------------------------------------------------------
#: Modules on the per-packet / per-hop critical path (see PR 2's
#: benchmarks): every dataclass allocated here rides a hot loop.
_HOT_PATH_MODULES = (
    "repro/net/eventloop.py",
    "repro/net/datagram.py",
    "repro/net/adversity.py",
    "repro/core/token.py",
    "repro/transport/messages.py",
    "repro/transport/reliable.py",
)

_SLOTS_EXEMPT_BASES = frozenset(
    {"Protocol", "Enum", "IntEnum", "StrEnum", "Exception", "NamedTuple"}
)


def _dataclass_decorator(node: ast.ClassDef) -> ast.AST | None:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return deco
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return deco
    return None


def _declares_slots(node: ast.ClassDef) -> bool:
    deco = _dataclass_decorator(node)
    if isinstance(deco, ast.Call):
        for kw in deco.keywords:
            if (
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
    return False


@rule("RC301", "hot-path dataclass without __slots__")
def check_hot_path_slots(ctx: FileContext) -> Iterator[FileFinding]:
    if not ctx.is_module(*_HOT_PATH_MODULES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if any(
            isinstance(base, ast.Name) and base.id in _SLOTS_EXEMPT_BASES
            for base in node.bases
        ):
            continue
        if _dataclass_decorator(node) is None:
            continue
        if not _declares_slots(node):
            yield (
                node.lineno,
                node.col_offset,
                f"dataclass {node.name} is allocated on the token/datagram "
                "hot path; declare @dataclass(slots=True) to drop the "
                "per-instance __dict__",
            )


@rule("RC302", "copy.deepcopy on the token/datagram hot path")
def check_hot_path_deepcopy(ctx: FileContext) -> Iterator[FileFinding]:
    if not ctx.is_module(*_HOT_PATH_MODULES):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "copy":
            if any(a.name == "deepcopy" for a in node.names):
                yield (
                    node.lineno,
                    node.col_offset,
                    "deepcopy walks the whole object graph per call; hot "
                    "paths use copy-on-write (Token.snapshot / "
                    "PiggybackedMessage.cow) instead",
                )
        elif (
            isinstance(node, ast.Call)
            and ctx.resolve(node.func) == "copy.deepcopy"
        ):
            yield (
                node.lineno,
                node.col_offset,
                "deepcopy walks the whole object graph per call; hot "
                "paths use copy-on-write (Token.snapshot / "
                "PiggybackedMessage.cow) instead",
            )


# ----------------------------------------------------------------------
# RC4xx — observability
# ----------------------------------------------------------------------
def _is_probe_receiver(ctx: FileContext, func: ast.AST) -> bool:
    """True for ``<probe-ish>.emit(...)`` call targets.

    Matches the repo's probe-handle naming convention: a bare or dotted
    name whose final component is ``probe``/``probes``/``bus`` or ends in
    ``_probe``/``_bus`` (``self.probe``, ``bus``, ``node.probe``, ...).
    """
    if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
        return False
    name = ctx.resolve(func.value)
    if name is None:
        return False
    leaf = name.split(".")[-1]
    return (
        leaf in ("probe", "probes", "bus")
        or leaf.endswith("_probe")
        or leaf.endswith("_bus")
    )


def _eager_format(node: ast.AST) -> str | None:
    """Kind of eager string formatting, or None."""
    if isinstance(node, ast.JoinedStr):
        return "f-string"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        return "%-formatting"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        if _eager_format(node.left) or _eager_format(node.right):
            return "string concatenation of formatted parts"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
    ):
        return ".format() call"
    return None


@rule("RC401", "eager string formatting in a probe.emit() argument")
def check_probe_lazy_args(ctx: FileContext) -> Iterator[FileFinding]:
    """Probe emissions ride the per-packet/per-hop path of every layer.

    The zero-cost-when-disabled contract only holds for the *enabled* side
    if arguments stay raw: the probe catalogue names each field and
    rendering formats them at export time.  An f-string (or ``%``/
    ``.format``) in the argument list pays string-building on every hop
    and bakes a rendering into the stream that the exporters can no
    longer take apart.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if not _is_probe_receiver(ctx, node.func):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            kind = _eager_format(arg)
            if kind is not None:
                yield (
                    arg.lineno,
                    arg.col_offset,
                    f"{kind} inside probe.emit() builds the string on the "
                    "hot path; pass raw fields — the probe catalogue "
                    "formats lazily at render/export time",
                )


@rule("RC402", "probe event timestamped outside the bus (sim-time only)")
def check_probe_sim_time(ctx: FileContext) -> Iterator[FileFinding]:
    """The bus stamps every event with ``loop.now`` when it is emitted.

    Constructing a ProbeEvent by hand (outside ``repro/obs/``) or passing
    an ``at=`` keyword to ``emit()`` would let call sites invent
    timestamps — the one thing that must come from the simulation clock
    alone for streams to merge and replays to compare byte-for-byte.
    """
    in_obs = ctx.in_dir("repro/obs/")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.resolve(node.func)
        if (
            not in_obs
            and name is not None
            and name.split(".")[-1] == "ProbeEvent"
        ):
            yield (
                node.lineno,
                node.col_offset,
                "ProbeEvent built outside repro/obs/: events are created "
                "by ProbeBus.emit(), which stamps loop.now and the global "
                "ordinal; hand-built events can carry invented timestamps",
            )
        elif _is_probe_receiver(ctx, node.func):
            for kw in node.keywords:
                if kw.arg == "at":
                    yield (
                        kw.value.lineno,
                        kw.value.col_offset,
                        "at= passed to probe.emit(): the bus stamps sim "
                        "time (loop.now) itself; call sites must not "
                        "supply timestamps",
                    )


def _is_contract_rule_decorator(ctx: FileContext, deco: ast.AST) -> bool:
    """True for ``@contract_rule("...")`` (bare or dotted, any alias)."""
    if isinstance(deco, ast.Call):
        deco = deco.func
    name = ctx.resolve(deco)
    return name is not None and name.split(".")[-1] == "contract_rule"


@rule("RC403", "contract-monitor rule reads ambient state (impure)")
def check_monitor_rule_purity(ctx: FileContext) -> Iterator[FileFinding]:
    """Functions registered with ``@contract_rule`` must be pure.

    The monitor evaluates the same rule over live probe streams and over
    replayed/exported ones, and ``repro obs diff`` assumes both produce
    the same alerts.  That only holds if a rule is a pure function of its
    :class:`~repro.obs.monitor.RuleWindow`: no wall clock or entropy, no
    ``global``/``nonlocal`` escape hatches, no attribute writes (mutating
    shared state across evaluations), and no ambient ``.now`` reads — the
    window's ``start``/``end`` are the only clock a rule may consult.
    """
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not any(
            _is_contract_rule_decorator(ctx, d) for d in fn.decorator_list
        ):
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = ctx.resolve(node.func)
                if name in _WALL_CLOCK or name in _ENTROPY:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"{name}() inside contract rule {fn.name}: rules "
                        "are re-evaluated on replay and must be pure "
                        "functions of the RuleWindow",
                    )
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                keyword = (
                    "global" if isinstance(node, ast.Global) else "nonlocal"
                )
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{keyword} in contract rule {fn.name}: rules must not "
                    "carry state between evaluations — derive everything "
                    "from the RuleWindow",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    elts = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for elt in elts:
                        if isinstance(elt, ast.Attribute):
                            yield (
                                elt.lineno,
                                elt.col_offset,
                                f"attribute write in contract rule "
                                f"{fn.name}: mutating ambient state makes "
                                "live and replayed alert streams disagree",
                            )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "now"
                and isinstance(node.ctx, ast.Load)
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f".now read in contract rule {fn.name}: the window's "
                    "start/end are the only clock a rule may consult",
                )


# ----------------------------------------------------------------------
# RC5xx — spec conformance (rainspec drift gate)
# ----------------------------------------------------------------------
#: One extraction per engine run: every RC5xx rule diffs the same
#: recovered machine, so the work is shared across the six rules.
_SPEC_DRIFT_CACHE: tuple[int, list] | None = None


def _spec_drift(project: Project) -> list:
    """Extract the implemented protocol machine and diff it against
    :data:`repro.spec.protocol.PROTOCOL_SPEC` (memoized per project)."""
    global _SPEC_DRIFT_CACHE
    if _SPEC_DRIFT_CACHE is not None and _SPEC_DRIFT_CACHE[0] == id(project):
        return _SPEC_DRIFT_CACHE[1]
    from repro.spec.extract import diff_against_spec, extract_project

    extraction = extract_project([(ctx.path, ctx.tree) for ctx in project.files])
    findings = diff_against_spec(extraction)
    _SPEC_DRIFT_CACHE = (id(project), findings)
    return findings


def _spec_rule(rule_id: str):
    def checker(project: Project) -> Iterator[ProjectFinding]:
        for f in _spec_drift(project):
            if f.rule == rule_id:
                yield (f.path, f.line, 0, f.message)

    checker.__name__ = f"check_spec_drift_{rule_id.lower()}"
    return checker


_SPEC_RULE_SUMMARIES = {
    "RC501": "registered message kind with no dispatch arm",
    "RC502": "dispatch arm unknown to the spec (or wrong handler)",
    "RC503": "spec exchange not implemented / its arm is missing",
    "RC504": "handler emits drift from the spec",
    "RC505": "handler transitions/guard-states drift from the spec",
    "RC506": "handler delegation drift from the spec",
}

for _rule_id in sorted(_SPEC_RULE_SUMMARIES):
    rule(_rule_id, _SPEC_RULE_SUMMARIES[_rule_id], scope="project")(
        _spec_rule(_rule_id)
    )
