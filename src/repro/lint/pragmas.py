"""Suppression pragmas for raincheck.

Grammar (one comment per pragma; the reason is mandatory)::

    # raincheck: disable=RC101 -- reason text
    # raincheck: disable=RC101,RC105 -- reason text
    # raincheck: disable-file=RC204 -- reason text

``disable`` suppresses matching violations reported on the same physical
line (put it on the *first* line of a multi-line statement).
``disable-file`` suppresses matching violations anywhere in the file and is
conventionally placed near the top.

Pragma hygiene is itself linted and never suppressible:

* RC001 — malformed pragma or unknown rule id (the pragma suppresses
  nothing until fixed);
* RC002 — pragma without a ``-- reason`` (likewise inert);
* RC003 — pragma (or one rule id of it) that suppressed nothing
  (reported under ``--strict``, keeping every pragma load-bearing).

Comments are found with :mod:`tokenize`, so pragma-shaped text inside
string literals is ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Pragma", "PragmaProblem", "scan_pragmas"]

_PRAGMA_RE = re.compile(r"#\s*raincheck\s*:\s*(?P<body>.*)$")
_DIRECTIVE_RE = re.compile(
    r"^(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass
class Pragma:
    """One parsed suppression comment."""

    line: int
    kind: str  #: "disable" (same line) or "disable-file" (whole file)
    rules: tuple[str, ...]
    reason: str
    #: Rule ids that actually suppressed at least one violation.
    used: set[str] = field(default_factory=set)

    @property
    def active(self) -> bool:
        """Inert pragmas (no reason) suppress nothing — RC002 enforces this."""
        return bool(self.reason)


@dataclass(frozen=True)
class PragmaProblem:
    """A malformed pragma, surfaced by the engine as RC001."""

    line: int
    message: str


def scan_pragmas(source: str) -> tuple[list[Pragma], list[PragmaProblem]]:
    """Extract all raincheck pragmas (and syntax problems) from ``source``."""
    pragmas: list[Pragma] = []
    problems: list[PragmaProblem] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas, problems  # unparsable files are reported elsewhere
    for tok in tokens:
        if tok.type is not tokenize.COMMENT:
            continue
        head = _PRAGMA_RE.search(tok.string)
        if head is None:
            continue
        line = tok.start[0]
        body = head.group("body").strip()
        directive = _DIRECTIVE_RE.match(body)
        if directive is None:
            problems.append(
                PragmaProblem(
                    line,
                    "malformed raincheck pragma "
                    "(expected: # raincheck: disable=RCnnn -- reason)",
                )
            )
            continue
        rules = tuple(
            part.strip() for part in directive.group("rules").split(",")
        )
        reason = directive.group("reason") or ""
        pragmas.append(Pragma(line, directive.group("kind"), rules, reason))
    return pragmas, problems
