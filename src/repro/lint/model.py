"""Shared datatypes of the raincheck linter.

Kept free of imports from :mod:`repro.lint.engine` / :mod:`repro.lint.rules`
so the engine (driver) and the rules (checks) can both depend on these
without a cycle.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.pragmas import Pragma, PragmaProblem

__all__ = ["Violation", "LintReport", "FileContext", "Project"]


@dataclass(frozen=True)
class Violation:
    """One rule finding at one source location (col is 0-based)."""

    file: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def sort_key(self) -> tuple[str, int, int, str, str]:
        return (self.file, self.line, self.col, self.rule, self.message)

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class FileContext:
    """One parsed source file as the rules see it.

    ``path`` is the display path (POSIX separators, relative to the CWD
    when possible) — rules that scope by location match on substrings like
    ``repro/net/``, which works for the real tree (``src/repro/net/...``)
    and for the test fixtures' miniature project layouts alike.
    """

    path: str
    source: str
    tree: ast.Module
    pragmas: list[Pragma]
    pragma_problems: list[PragmaProblem]
    _imports: dict[str, str] | None = field(default=None, repr=False)

    def imports(self) -> dict[str, str]:
        """Local name → dotted origin, from this file's import statements.

        ``import time as t`` maps ``t -> time``; ``from datetime import
        datetime`` maps ``datetime -> datetime.datetime``.  Used to resolve
        call targets to canonical dotted names regardless of aliasing.
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = (
                            alias.name if alias.asname else alias.name.split(".")[0]
                        )
                elif isinstance(node, ast.ImportFrom) and node.module:
                    if node.level:  # relative import: not a stdlib target
                        continue
                    for alias in node.names:
                        table[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
            self._imports = table
        return self._imports

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or ``None``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports().get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def in_dir(self, *fragments: str) -> bool:
        """True if this file lives under any ``repro/<sub>/`` fragment."""
        probe = "/" + self.path
        return any(f"/{frag}" in probe for frag in fragments)

    def is_module(self, *suffixes: str) -> bool:
        """True if this file *is* one of the named modules (path suffix)."""
        return any(self.path.endswith(suffix) for suffix in suffixes)


@dataclass
class Project:
    """All files of one lint run, for cross-file (project-scope) rules."""

    files: list[FileContext]
    parse_errors: list[Violation] = field(default_factory=list)
