"""raincheck — AST-based determinism & protocol-invariant linter.

The determinism contract of this reproduction (all randomness from a seeded
``EventLoop.rng``, no wall clock outside ``repro.perf``, replay-identical
``(time, priority, seq)`` ordering) and the session protocol's structural
invariants (exhaustive message dispatch, scheduling primitives contained in
``repro.net``/``repro.runtime``, hot-path allocation hygiene) are enforced
*statically*, before any test runs — a lightweight take on the session-type
idea of Kouzapas et al.

Entry points
------------
* ``python -m repro lint [--strict] [--json] [paths...]`` — the CLI gate;
* :func:`repro.lint.engine.build_project` + :func:`repro.lint.engine.run` —
  the programmatic API used by the tests;
* :mod:`repro.lint.rules` — the rule registry (RC1xx determinism, RC2xx
  protocol, RC3xx hot-path hygiene, RC0xx pragma hygiene).

The full contract, rule catalogue, and suppression-pragma grammar are
documented in docs/DETERMINISM.md.
"""

from __future__ import annotations

from repro.lint.engine import (
    DEFAULT_EXCLUDES,
    LintReport,
    Violation,
    build_project,
    format_human,
    format_json,
    run,
)
from repro.lint.rules import RULES, Rule

__all__ = [
    "DEFAULT_EXCLUDES",
    "LintReport",
    "RULES",
    "Rule",
    "Violation",
    "build_project",
    "format_human",
    "format_json",
    "run",
]
