"""raincheck engine: file discovery, rule driving, suppression, output.

The engine is deliberately boring: parse every ``.py`` file once with
:mod:`ast`, hand each file (and then the whole project) to the registered
rules, apply suppression pragmas, and report what is left in a stable
order.  Determinism of the *linter's own output* matters — CI diffs JSON
reports between runs — so violations are sorted by ``(file, line, col,
rule, message)`` and the JSON form is emitted with sorted keys.
"""

from __future__ import annotations

import ast
import json
import os
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.model import FileContext, LintReport, Project, Violation
from repro.lint.pragmas import scan_pragmas
from repro.lint.rules import RULES

__all__ = [
    "DEFAULT_EXCLUDES",
    "LintReport",
    "Violation",
    "build_project",
    "format_human",
    "format_json",
    "run",
]

#: Directory names never descended into.  ``lint_fixtures`` holds the test
#: suite's deliberately-bad snippets; linting them would be self-defeating.
DEFAULT_EXCLUDES = frozenset(
    {"__pycache__", ".git", ".hypothesis", "lint_fixtures", "chaos-artifacts"}
)


# ----------------------------------------------------------------------
# project construction
# ----------------------------------------------------------------------
def _iter_py_files(
    paths: Iterable[str], excludes: frozenset[str]
) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in excludes)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield Path(dirpath) / name


def _display_path(path: Path) -> str:
    """Stable, diff-friendly path: relative to the CWD when possible."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def build_project(
    paths: Iterable[str], excludes: frozenset[str] = DEFAULT_EXCLUDES
) -> Project:
    """Parse every Python file under ``paths`` into a :class:`Project`.

    Files that fail to parse become RC000 syntax violations rather than
    aborting the run (CI should report them all at once).
    """
    files: list[FileContext] = []
    broken: list[Violation] = []
    seen: set[str] = set()
    for path in _iter_py_files(paths, excludes):
        display = _display_path(path)
        if display in seen:
            continue
        seen.add(display)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            broken.append(
                Violation(
                    display,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    "RC000",
                    f"file does not parse: {exc.msg}",
                )
            )
            continue
        pragmas, problems = scan_pragmas(source)
        files.append(FileContext(display, source, tree, pragmas, problems))
    return Project(files=files, parse_errors=broken)


# ----------------------------------------------------------------------
# running rules + suppression
# ----------------------------------------------------------------------
def _pragma_hygiene(ctx: FileContext) -> Iterator[Violation]:
    for problem in ctx.pragma_problems:
        yield Violation(ctx.path, problem.line, 0, "RC001", problem.message)
    for pragma in ctx.pragmas:
        unknown = sorted(r for r in pragma.rules if r not in RULES)
        if unknown:
            yield Violation(
                ctx.path,
                pragma.line,
                0,
                "RC001",
                f"pragma names unknown rule id(s): {', '.join(unknown)}",
            )
        if not pragma.reason:
            yield Violation(
                ctx.path,
                pragma.line,
                0,
                "RC002",
                "suppression pragma without a justification "
                "(append: -- why this is safe); the pragma is inert",
            )


def _suppressed(ctx: FileContext, violation: Violation) -> bool:
    for pragma in ctx.pragmas:
        if not pragma.active or violation.rule not in pragma.rules:
            continue
        if pragma.kind == "disable-file" or pragma.line == violation.line:
            pragma.used.add(violation.rule)
            return True
    return False


def _unused_pragmas(ctx: FileContext) -> Iterator[Violation]:
    for pragma in ctx.pragmas:
        if not pragma.active:
            continue  # already reported as RC002
        idle = sorted(set(pragma.rules) - pragma.used)
        if idle:
            yield Violation(
                ctx.path,
                pragma.line,
                0,
                "RC003",
                f"suppression of {', '.join(idle)} matched no violation; "
                "delete the stale pragma",
            )


def run(
    project: Project,
    select: frozenset[str] | None = None,
    strict: bool = False,
) -> LintReport:
    """Run every registered rule (or just ``select``) over ``project``.

    ``strict`` additionally reports RC003 (unused suppressions), which is
    what keeps every pragma in the tree load-bearing.  RC00x pragma-hygiene
    findings are never suppressible.
    """
    report = LintReport(files_checked=len(project.files))
    out = report.violations
    out.extend(project.parse_errors)

    for ctx in project.files:
        out.extend(_pragma_hygiene(ctx))
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            if rule.scope != "file":
                continue
            if select is not None and rule_id not in select:
                continue
            for line, col, message in rule.func(ctx):
                violation = Violation(ctx.path, line, col, rule_id, message)
                if not _suppressed(ctx, violation):
                    out.append(violation)

    by_path = {ctx.path: ctx for ctx in project.files}
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        if rule.scope != "project":
            continue
        if select is not None and rule_id not in select:
            continue
        for path, line, col, message in rule.func(project):
            violation = Violation(path, line, col, rule_id, message)
            ctx = by_path.get(path)
            if ctx is None or not _suppressed(ctx, violation):
                out.append(violation)

    if strict:
        for ctx in project.files:
            out.extend(_unused_pragmas(ctx))

    out.sort(key=lambda v: v.sort_key)
    return report


# ----------------------------------------------------------------------
# output
# ----------------------------------------------------------------------
def format_human(report: LintReport) -> str:
    lines = [v.render() for v in report.violations]
    noun = "file" if report.files_checked == 1 else "files"
    if report.ok:
        lines.append(f"raincheck: {report.files_checked} {noun} clean")
    else:
        lines.append(
            f"raincheck: {len(report.violations)} violation(s) "
            f"in {report.files_checked} {noun}"
        )
    return "\n".join(lines) + "\n"


def format_json(report: LintReport) -> str:
    """Stable machine output (documented in docs/DETERMINISM.md §JSON).

    Violations are sorted by (file, line, col, rule, message) and keys are
    emitted alphabetically, so two runs over identical trees produce
    byte-identical reports that diff cleanly in CI artifacts.
    """
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "violations": [
            {
                "file": v.file,
                "line": v.line,
                "col": v.col,
                "rule": v.rule,
                "message": v.message,
            }
            for v in report.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
