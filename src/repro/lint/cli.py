"""CLI behind ``python -m repro lint`` (see repro/cli.py for the parser).

Exit status: 0 when the tree is clean, 1 when any violation is reported.
``--strict`` additionally fails on unused suppression pragmas (RC003) —
this is the mode CI runs.  ``--json`` emits the stable machine format
documented in docs/DETERMINISM.md.
"""

from __future__ import annotations

import argparse

from repro.lint.engine import (
    DEFAULT_EXCLUDES,
    build_project,
    format_human,
    format_json,
    run,
)
from repro.lint.rules import RULES


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on unused suppression pragmas (RC003); CI mode",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="stable machine-readable output, sorted by file/line/rule",
    )
    parser.add_argument(
        "--select",
        metavar="RC1xx,RC2xx",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--include-all",
        action="store_true",
        help="descend into default-excluded dirs (lint fixtures, caches)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            scope = f"[{rule.scope}]"
            print(f"{rule_id}  {scope:<9} {rule.summary}")
        return 0

    select = None
    if args.select:
        select = frozenset(part.strip() for part in args.select.split(","))
        unknown = sorted(select - set(RULES))
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}")
            return 2

    excludes = frozenset() if args.include_all else DEFAULT_EXCLUDES
    try:
        project = build_project(args.paths, excludes=excludes)
    except FileNotFoundError as exc:
        print(str(exc))
        return 2
    report = run(project, select=select, strict=args.strict)
    output = format_json(report) if args.json else format_human(report)
    print(output, end="")
    return 0 if report.ok else 1
