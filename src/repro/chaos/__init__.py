"""Chaos campaign engine: searching the fault-schedule space.

The test suite's hand-written scenarios cover the faults someone thought
of.  This package covers the ones nobody did: it *generates* randomized
fault schedules — composing every :class:`~repro.cluster.faults.FaultInjector`
primitive with the adversarial network modes of :mod:`repro.net.adversity`
— runs them against a loaded cluster under continuous
:class:`~repro.cluster.invariants.InvariantMonitor` sampling, records every
schedule as a replayable JSON trace, and on failure shrinks the schedule by
delta debugging to a minimal reproducer.

Pieces:

* :mod:`repro.chaos.schedule` — fault ops, seeded schedule generation, and
  the canonical JSON trace format (same seed ⇒ byte-identical trace);
* :mod:`repro.chaos.engine` — one run or a whole campaign: build cluster,
  apply ops, drive background multicast + SharedDict load, check the
  global invariants at quiescence;
* :mod:`repro.chaos.shrink` — ddmin over the op list.

CLI: ``raincore-repro chaos --nodes 8 --seconds 30 --seed 7 --campaign 5``.
"""

from repro.chaos.engine import CampaignResult, ChaosEngine, RunResult, run_campaign
from repro.chaos.schedule import ChaosParams, FaultOp, Schedule
from repro.chaos.shrink import shrink_schedule

__all__ = [
    "ChaosParams",
    "FaultOp",
    "Schedule",
    "ChaosEngine",
    "RunResult",
    "CampaignResult",
    "run_campaign",
    "shrink_schedule",
]
