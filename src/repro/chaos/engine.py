"""The chaos campaign engine: run fault schedules against a loaded cluster.

One :class:`ChaosEngine` run is a complete experiment:

1. build a fresh :class:`~repro.cluster.harness.RaincoreCluster` from the
   schedule's parameters (the run RNG seed is part of the trace);
2. attach a :class:`~repro.data.shared_dict.SharedDict` replica per node and
   start a continuous :class:`~repro.cluster.invariants.InvariantMonitor`;
3. drive background multicast + replicated-write load while applying every
   scheduled fault op at its virtual time;
4. quiesce — force-heal all link faults and adversities, recover crashed
   nodes — and demand reconvergence;
5. check the global correctness properties: convergence, continuous
   invariants, bounded double-token time, zero duplicate deliveries,
   pairwise prefix-consistent delivery orders, and replica agreement.

A run is deterministic in its schedule: replaying a trace reproduces the
identical execution, which is what makes the shrinker's candidates
meaningful.  :func:`run_campaign` strings many runs together (seed, seed+1,
...), shrinks any failure, writes artifacts, and renders a summary table
through :mod:`repro.metrics`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable

from repro.chaos.schedule import ChaosParams, FaultOp, Schedule, node_names
from repro.chaos.shrink import shrink_schedule
from repro.cluster.harness import RaincoreCluster
from repro.cluster.invariants import InvariantMonitor
from repro.core.config import RaincoreConfig
from repro.core.states import NodeState
from repro.data import SharedDict
from repro.metrics import Table
from repro.metrics.analysis import duplicate_deliveries, prefix_consistency_violations
from repro.obs import (
    ContractMonitor,
    FlightRecorder,
    MetricsRegistry,
    ProbeMetrics,
    build_bundle,
    bundle_to_json,
    paper_contract_rules,
)

__all__ = ["ChaosEngine", "RunResult", "CampaignResult", "run_campaign"]


@dataclass
class RunResult:
    """Outcome of one chaos run."""

    schedule: Schedule
    ok: bool
    failure: str | None = None  #: failure kind, e.g. "invariant:seq-monotonicity"
    detail: str = ""
    stats: dict = field(default_factory=dict)
    #: Diagnostic bundle (repro.obs) built for failing runs; None when ok.
    bundle: dict | None = None
    #: Contract-monitor alerts fired during the run (Alert.record() dicts).
    #: Observational: alerts do not fail a run by themselves — the caller
    #: decides (e.g. ``repro chaos --fail-on-alerts``, the CI clean gate).
    alerts: list[dict] = field(default_factory=list)

    @property
    def seed(self) -> int:
        return self.schedule.params.seed


class ChaosEngine:
    """Executes one :class:`~repro.chaos.schedule.Schedule`.

    Parameters
    ----------
    schedule:
        The plan to run (generated or loaded from a trace).
    quiesce_budget:
        Virtual seconds allowed for reconvergence after the fault window.
    settle:
        Extra virtual seconds after convergence for replicated state to
        finish propagating before the final checks.
    monitor_interval:
        Invariant sampling period.
    double_token_allowance:
        Permitted cumulative double-token seconds (non-strict runs).  False
        alarms and ack blackouts legitimately create short duplicate
        windows that the seq guard heals; unbounded growth is the bug.
        Defaults to ``max(1.0, 5%% of the fault window)``.
    background_tick:
        Period of the background load: one multicast per tick, one
        replicated write every other tick.
    recorder_capacity:
        Flight-recorder ring size per node; the diagnostic bundle built
        for a failing run carries at most this many recent events/node.
    instrument:
        Optional callback ``instrument(cluster, bus)`` invoked once the
        cluster is built and its probe bus enabled, before formation.
        The ``repro prof`` CLI uses it to attach a wall-clock profiler
        and a streaming aggregator to the standard chaos workload; any
        observational attachment (recorder, extra monitors) fits here.
    """

    def __init__(
        self,
        schedule: Schedule,
        *,
        quiesce_budget: float = 60.0,
        settle: float = 3.0,
        monitor_interval: float = 0.002,
        double_token_allowance: float | None = None,
        background_tick: float = 0.25,
        recorder_capacity: int = 512,
        instrument: Callable | None = None,
    ) -> None:
        self.schedule = schedule
        self.instrument = instrument
        self.quiesce_budget = quiesce_budget
        self.settle = settle
        self.monitor_interval = monitor_interval
        self.recorder_capacity = recorder_capacity
        params = schedule.params
        self.double_token_allowance = (
            double_token_allowance
            if double_token_allowance is not None
            else max(1.0, 0.05 * params.seconds)
        )
        self.background_tick = background_tick
        self.ids = node_names(params.nodes)
        self._sent = 0
        self._writes = 0
        self._ops_applied = 0

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        params = self.schedule.params
        cluster = RaincoreCluster(
            self.ids,
            seed=params.seed,
            segments=params.segments,
            config=RaincoreConfig.tuned(ring_size=params.nodes),
        )
        self.cluster = cluster
        bus = cluster.enable_probes()
        if self.instrument is not None:
            self.instrument(cluster, bus)
        recorder = FlightRecorder(bus, capacity=self.recorder_capacity)
        registry = MetricsRegistry()
        ProbeMetrics(bus, registry)
        dicts = {nid: SharedDict(cluster.node(nid)) for nid in self.ids}
        # Contract monitor: the paper's SLO bounds, derived from the same
        # config the cluster was provisioned with, watched live.  It must
        # subscribe *before* formation (its view/uptime tracking is fed by
        # node.state and view.change probes), but only starts ticking after,
        # so bootstrap is not judged against steady-state bounds.  Purely
        # observational: no probes, no RNG, no mutation.
        contract = ContractMonitor(
            bus,
            paper_contract_rules(
                cluster.config, params.nodes, segments=params.segments
            ),
        )
        cluster.start_all(form_time=30.0 + params.nodes)
        contract.start()
        monitor = InvariantMonitor(
            cluster, interval=self.monitor_interval, strict=params.strict
        )
        # Snapshot the rings the moment the *first* violation is flagged —
        # by the end of quiescence the interesting events would have been
        # evicted by healthy reconvergence traffic.
        first_violation: dict = {}

        def on_violation(violation) -> None:
            if not first_violation:
                first_violation["at"] = violation.at
                first_violation["events"] = recorder.snapshot()

        monitor.on_violation = on_violation
        monitor.start()

        t0 = cluster.loop.now
        self._t_end = t0 + params.seconds
        for op in self.schedule.ops:
            at = t0 + min(max(op.at, 0.0), params.seconds)
            cluster.loop.call_at(at, self._apply, op)
        self._background(dicts)
        cluster.run(params.seconds)

        converged = self._quiesce()
        monitor.stop()
        contract.evaluate()  # final sweep at quiesce end
        contract.stop()

        failure, detail = self._check(converged, monitor, dicts)
        stats = self._stats(monitor)
        alerts = contract.alert_records()
        bundle = None
        if failure is not None:
            registry.capture_node_stats(cluster.stats)
            bundle = build_bundle(
                failure,
                detail=detail,
                at=first_violation.get("at", cluster.loop.now),
                events=first_violation.get("events") or recorder.snapshot(),
                context={
                    "seed": params.seed,
                    "nodes": params.nodes,
                    "seconds": params.seconds,
                    "segments": params.segments,
                    "strict": params.strict,
                    "ops": len(self.schedule.ops),
                    "events_seen": recorder.events_seen,
                },
                metrics=registry.to_dict(),
                schedule=json.loads(self.schedule.to_json()),
                alerts=alerts,
            )
        recorder.close()
        return RunResult(
            schedule=self.schedule,
            ok=failure is None,
            failure=failure,
            detail=detail,
            stats=stats,
            bundle=bundle,
            alerts=alerts,
        )

    # ------------------------------------------------------------------
    # background load
    # ------------------------------------------------------------------
    def _background(self, dicts: dict[str, SharedDict]) -> None:
        cluster = self.cluster
        rng = cluster.loop.rng

        def tick() -> None:
            if cluster.loop.now >= self._t_end:
                return
            members = [
                n
                for n in cluster.live_nodes()
                if n.state in (NodeState.HUNGRY, NodeState.EATING)
            ]
            if members:
                origin = members[rng.randrange(len(members))]
                origin.multicast(f"bg-{self._sent}")
                self._sent += 1
                if self._sent % 2 == 0:
                    writer = members[rng.randrange(len(members))]
                    dicts[writer.node_id].set(
                        f"k{self._writes % 16}", self._writes
                    )
                    self._writes += 1
            cluster.loop.call_later(self.background_tick, tick)

        cluster.loop.call_later(self.background_tick, tick)

    # ------------------------------------------------------------------
    # fault op application
    # ------------------------------------------------------------------
    def _apply(self, op: FaultOp) -> None:
        """Apply one op, guarded so any op subset is a valid schedule.

        Guards (skip rather than raise) keep shrunk and hand-edited traces
        runnable: crashing a dead node, recovering a live one, or accusing
        a crashed peer are no-ops, deterministically.
        """
        cluster = self.cluster
        faults = cluster.faults
        k, a = op.kind, op.args
        live = {n.node_id for n in cluster.live_nodes()}
        self._ops_applied += 1
        if k == "crash":
            if a[0] in live and len(live) > 2:
                faults.crash_node(a[0])
        elif k == "recover":
            if a[0] not in live:
                faults.recover_node(a[0])
        elif k == "cut_link":
            faults.cut_link(a[0], a[1])
        elif k == "restore_link":
            faults.restore_link(a[0], a[1])
        elif k == "partition":
            faults.partition(*[list(group) for group in a])
        elif k == "heal_partition":
            faults.heal_partition()
        elif k == "long_partition":
            # The resync soak primitive: isolate the named nodes from the
            # rest for a *long* window (typically many times the resync
            # byte budget's worth of traffic), then heal.  The heal is
            # scheduled here rather than as a separate op so a shrunk
            # trace can never strand the cluster partitioned.
            isolated = [n for n in a[0] if n in self.ids]
            rest = [n for n in self.ids if n not in isolated]
            if isolated and rest:
                faults.partition(isolated, rest)
                heal_at = min(
                    cluster.loop.now + a[1], self._t_end
                )
                cluster.loop.call_at(heal_at, faults.heal_partition)
        elif k == "unplug":
            faults.unplug_cable(a[0], segment_index=a[1])
        elif k == "replug":
            faults.replug_cable(cluster.topology.addresses_of(a[0])[a[1]])
        elif k == "flap_nic":
            node, seg_idx, period, duration = a
            remaining = self._t_end - cluster.loop.now - 0.05
            if remaining > 0.1:
                faults.flap_nic(
                    node,
                    segment_index=seg_idx,
                    period=period,
                    duration=min(duration, remaining),
                )
        elif k == "lose_token":
            faults.lose_token()
        elif k == "lose_token_in_flight":
            faults.lose_token_in_flight(timeout=a[0])
        elif k == "false_alarm":
            if a[0] in live and a[1] in live:
                faults.false_alarm(a[0], a[1])
        elif k == "ack_blackout":
            faults.ack_blackout(a[0], a[1], a[2])
        elif k == "forge_duplicate_token":
            faults.forge_duplicate_token()
        elif k == "duplicate":
            faults.set_duplication(a[1], segment=a[0])
        elif k == "burst":
            faults.set_burst_loss(a[1], a[2], loss_bad=a[3], segment=a[0])
        elif k == "burst_off":
            faults.clear_burst_loss(segment=a[0])
        elif k == "spike":
            faults.set_delay_spikes(a[1], a[2], segment=a[0])
        elif k == "spike_off":
            faults.set_delay_spikes(0.0, 0.0, segment=a[0])
        else:  # pragma: no cover - from_obj validates kinds
            raise ValueError(f"unknown fault op {k!r}")

    # ------------------------------------------------------------------
    # quiescence and checks
    # ------------------------------------------------------------------
    def _quiesce(self) -> bool:
        """Heal everything, recover everyone, and wait for convergence."""
        cluster = self.cluster
        cluster.network.clear_filters()
        cluster.topology.clear_link_faults()
        for nid in self.ids:
            if cluster.node(nid).state is NodeState.DOWN:
                cluster.faults.recover_node(nid)
        converged = cluster.run_until_converged(
            self.quiesce_budget, expected=set(self.ids)
        )
        cluster.run(self.settle)
        return converged

    def _check(
        self,
        converged: bool,
        monitor: InvariantMonitor,
        dicts: dict[str, SharedDict],
    ) -> tuple[str | None, str]:
        cluster = self.cluster
        if not converged:
            return "no-convergence", f"views={cluster.membership_views()}"
        if monitor.violations:
            first = monitor.violations[0]
            return (
                f"invariant:{first.kind}",
                f"{len(monitor.violations)} violations; first at "
                f"t={first.at:.3f}: {first.detail}",
            )
        if monitor.double_token_time > self.double_token_allowance:
            return (
                "double-token-time",
                f"{monitor.double_token_time:.3f}s exceeds allowance "
                f"{self.double_token_allowance:.3f}s",
            )
        dupes = {n: d for n, d in duplicate_deliveries(cluster).items() if d}
        if dupes:
            return "duplicate-delivery", f"per-node duplicates: {dupes}"
        divergent = prefix_consistency_violations(cluster.all_delivery_orders())
        if divergent:
            return "order-divergence", f"disagreeing pairs: {divergent[:5]}"
        snaps = {nid: dicts[nid].snapshot() for nid in self.ids}
        reference = snaps[self.ids[0]]
        differing = [nid for nid in self.ids if snaps[nid] != reference]
        if differing:
            return "replica-divergence", f"nodes differing from {self.ids[0]}: {differing}"
        return None, ""

    def _stats(self, monitor: InvariantMonitor) -> dict:
        cluster = self.cluster
        return {
            "ops": len(self.schedule.ops),
            "ops_applied": self._ops_applied,
            "multicasts": self._sent,
            "writes": self._writes,
            "deliveries": cluster.total_deliveries(),
            "violations": len(monitor.violations),
            "double_token_time": monitor.double_token_time,
            "samples": monitor.samples,
            "packets_delivered": cluster.network.packets_delivered,
            "packets_dropped": cluster.network.packets_dropped,
            "packets_duplicated": cluster.network.packets_duplicated,
            "regenerations": sum(
                cluster.node(nid).recovery.regenerations for nid in self.ids
            ),
        }


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------
@dataclass
class CampaignResult:
    """All runs of one campaign plus any shrunk reproducers."""

    results: list[RunResult] = field(default_factory=list)
    #: run index -> (shrunk schedule, engine runs spent shrinking)
    shrunk: dict[int, tuple[Schedule, int]] = field(default_factory=dict)
    artifacts: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[RunResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_table(self) -> Table:
        table = Table(
            "Chaos campaign summary",
            [
                "seed",
                "ops",
                "result",
                "deliveries",
                "dup 2x-time (s)",
                "pkts dropped",
                "pkts duped",
                "911 regens",
                "shrunk ops",
            ],
        )
        for idx, r in enumerate(self.results):
            shrunk = self.shrunk.get(idx)
            table.add_row(
                r.seed,
                r.stats.get("ops", 0),
                "ok" if r.ok else r.failure,
                r.stats.get("deliveries", 0),
                r.stats.get("double_token_time", 0.0),
                r.stats.get("packets_dropped", 0),
                r.stats.get("packets_duplicated", 0),
                r.stats.get("regenerations", 0),
                len(shrunk[0].ops) if shrunk else None,
            )
        for r in self.failures:
            table.add_note(f"seed {r.seed} failed [{r.failure}]: {r.detail}")
        return table


def run_campaign(
    nodes: int,
    seconds: float,
    seed: int,
    *,
    campaign: int = 1,
    segments: int = 2,
    intensity: float = 1.0,
    strict: bool = False,
    artifacts_dir: str | None = None,
    shrink: bool = True,
    max_shrink_tests: int = 48,
    log: Callable[[str], None] | None = None,
    **engine_opts,
) -> CampaignResult:
    """Run ``campaign`` schedules with seeds ``seed, seed+1, ...``.

    Every failing schedule's trace is written to ``artifacts_dir`` (when
    given), then shrunk to a minimal reproducer which is written alongside
    it as ``*.min.json``.
    """
    say = log if log is not None else (lambda _msg: None)
    out = CampaignResult()
    for k in range(campaign):
        params = ChaosParams(
            nodes=nodes,
            seconds=seconds,
            seed=seed + k,
            segments=segments,
            intensity=intensity,
            strict=strict,
        )
        schedule = Schedule.generate(params)
        say(
            f"run {k + 1}/{campaign}: seed={params.seed} "
            f"ops={len(schedule.ops)} window={seconds:g}s"
        )
        result = ChaosEngine(schedule, **engine_opts).run()
        out.results.append(result)
        if result.alerts:
            say(f"  {len(result.alerts)} contract alert(s) fired")
        if result.ok:
            say(f"  clean ({result.stats['deliveries']} deliveries)")
            continue
        say(f"  FAILED [{result.failure}] {result.detail}")
        if artifacts_dir is not None:
            path = _write_artifact(
                artifacts_dir, f"trace-seed{params.seed}.json", schedule.to_json()
            )
            out.artifacts.append(path)
            say(f"  trace written to {path}")
            if result.bundle is not None:
                path = _write_artifact(
                    artifacts_dir,
                    f"trace-seed{params.seed}.bundle.json",
                    bundle_to_json(result.bundle),
                )
                out.artifacts.append(path)
                say(f"  diagnostic bundle written to {path}")
        if shrink:
            say("  shrinking ...")
            minimal, tests = shrink_schedule(
                schedule,
                lambda s: not ChaosEngine(s, **engine_opts).run().ok,
                max_tests=max_shrink_tests,
            )
            out.shrunk[k] = (minimal, tests)
            say(
                f"  shrunk {len(schedule.ops)} -> {len(minimal.ops)} ops "
                f"in {tests} runs"
            )
            if artifacts_dir is not None:
                path = _write_artifact(
                    artifacts_dir,
                    f"trace-seed{params.seed}.min.json",
                    minimal.to_json(),
                )
                out.artifacts.append(path)
                say(f"  minimal trace written to {path}")
                # Re-run the minimal schedule once more for its own bundle:
                # the shrinker's predicate runs discard results, and the
                # minimized failure is the one worth reading.
                min_result = ChaosEngine(minimal, **engine_opts).run()
                if min_result.bundle is not None:
                    path = _write_artifact(
                        artifacts_dir,
                        f"trace-seed{params.seed}.min.bundle.json",
                        bundle_to_json(min_result.bundle),
                    )
                    out.artifacts.append(path)
                    say(f"  minimal diagnostic bundle written to {path}")
    return out


def _write_artifact(directory: str, name: str, text: str) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path
