"""Fault schedules: the unit the chaos engine generates, runs and shrinks.

A schedule is a seeded, fully explicit plan: the cluster parameters plus a
time-ordered list of :class:`FaultOp` records, each a JSON-serializable
``(at, kind, args)`` triple.  Everything else in a chaos run — packet loss
draws, background load, protocol timing — is derived from the event loop's
seeded RNG, so *schedule + seed is the complete reproducer*.  The JSON
rendering is canonical (sorted keys, rounded floats), which gives the
byte-identical-trace property the campaign engine asserts.

Op kinds and their arguments:

======================  =============================================
``crash``               ``[node]``
``recover``             ``[node]``
``cut_link``            ``[a, b]``
``restore_link``        ``[a, b]``
``partition``           ``[[group...], [group...]]``
``heal_partition``      ``[]``
``long_partition``      ``[[node...], duration]``  (isolates the named
                        nodes from the rest, heals after ``duration``)
``unplug``              ``[node, segment_index]``
``replug``              ``[node, segment_index]``
``flap_nic``            ``[node, segment_index, period, duration]``
``lose_token``          ``[]``
``lose_token_in_flight``  ``[timeout]``
``false_alarm``         ``[accuser, victim]``
``ack_blackout``        ``[src, dst, duration]``
``forge_duplicate_token``  ``[]``
``duplicate``           ``[segment, prob]``  (``prob 0.0`` switches off)
``burst``               ``[segment, p_enter, p_exit, loss_bad]``
``burst_off``           ``[segment]``
``spike``               ``[segment, prob, extra]``
``spike_off``           ``[segment]``
======================  =============================================

``at`` is virtual seconds after the cluster finished forming.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

__all__ = ["FaultOp", "ChaosParams", "Schedule", "node_names", "segment_names"]

TRACE_FORMAT = "raincore-chaos-trace"
TRACE_VERSION = 1

#: Op kinds a generator may emit; replay validates against this set.
OP_KINDS = frozenset(
    {
        "crash",
        "recover",
        "cut_link",
        "restore_link",
        "partition",
        "heal_partition",
        "long_partition",
        "unplug",
        "replug",
        "flap_nic",
        "lose_token",
        "lose_token_in_flight",
        "false_alarm",
        "ack_blackout",
        "forge_duplicate_token",
        "duplicate",
        "burst",
        "burst_off",
        "spike",
        "spike_off",
    }
)


def node_names(n: int) -> list[str]:
    """The engine's canonical node naming (matches the soak scenarios)."""
    return [f"n{i:02d}" for i in range(n)]


def segment_names(n: int) -> list[str]:
    return [f"net{k}" for k in range(n)]


def _r(x: float) -> float:
    """Round a generated float so the in-memory schedule equals its JSON."""
    return round(float(x), 6)


@dataclass(frozen=True)
class FaultOp:
    """One scheduled fault injection."""

    at: float
    kind: str
    args: tuple = ()

    def to_obj(self) -> dict:
        return {"at": self.at, "kind": self.kind, "args": _args_to_obj(self.args)}

    @classmethod
    def from_obj(cls, obj: dict) -> "FaultOp":
        kind = obj["kind"]
        if kind not in OP_KINDS:
            raise ValueError(f"unknown fault op kind {kind!r}")
        return cls(at=float(obj["at"]), kind=kind, args=_args_from_obj(obj["args"]))


def _args_to_obj(args):
    return [list(a) if isinstance(a, tuple) else a for a in args]


def _args_from_obj(args):
    return tuple(tuple(a) if isinstance(a, list) else a for a in args)


@dataclass(frozen=True)
class ChaosParams:
    """Cluster and campaign knobs carried inside the trace, so a replay
    reconstructs the identical environment."""

    nodes: int
    seconds: float
    seed: int
    segments: int = 2
    intensity: float = 1.0  #: scales the fault event rate
    strict: bool = False  #: strict InvariantMonitor (no double-token grace)

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError("chaos needs at least two nodes")
        if self.seconds <= 0.0:
            raise ValueError("seconds must be positive")
        if self.segments < 1:
            raise ValueError("need at least one segment")
        if self.intensity < 0.0:
            raise ValueError("intensity must be non-negative")

    def to_obj(self) -> dict:
        return {
            "nodes": self.nodes,
            "seconds": self.seconds,
            "seed": self.seed,
            "segments": self.segments,
            "intensity": self.intensity,
            "strict": self.strict,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "ChaosParams":
        return cls(
            nodes=int(obj["nodes"]),
            seconds=float(obj["seconds"]),
            seed=int(obj["seed"]),
            segments=int(obj.get("segments", 2)),
            intensity=float(obj.get("intensity", 1.0)),
            strict=bool(obj.get("strict", False)),
        )


@dataclass
class Schedule:
    """A complete, replayable chaos plan: params + time-ordered fault ops."""

    params: ChaosParams
    ops: list[FaultOp] = field(default_factory=list)

    # ------------------------------------------------------------------
    # trace (de)serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON trace: same schedule ⇒ byte-identical text."""
        obj = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "params": self.params.to_obj(),
            "ops": [op.to_obj() for op in self.ops],
        }
        return json.dumps(obj, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        obj = json.loads(text)
        if obj.get("format") != TRACE_FORMAT:
            raise ValueError("not a raincore chaos trace")
        if obj.get("version") != TRACE_VERSION:
            raise ValueError(f"unsupported trace version {obj.get('version')!r}")
        return cls(
            params=ChaosParams.from_obj(obj["params"]),
            ops=[FaultOp.from_obj(o) for o in obj["ops"]],
        )

    def with_ops(self, ops: list[FaultOp]) -> "Schedule":
        """Same environment, different op list (the shrinker's move)."""
        return Schedule(params=self.params, ops=list(ops))

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, params: ChaosParams) -> "Schedule":
        """Draw a randomized schedule from the seeded op palette.

        The generator keeps a coarse plan-time model of cluster state
        (which nodes it has scheduled down, whether a partition is open,
        which segments already run an adversity) so schedules stay *fair*:
        faults always leave the protocol a recovery path, which is what
        makes a clean campaign the expected outcome and any failure a
        finding.  Uses its own RNG stream, independent of the run RNG, so
        schedule identity depends only on ``params``.
        """
        rng = random.Random(f"{TRACE_FORMAT}-{params.seed}")
        gen = _Generator(params, rng)
        return cls(params=params, ops=gen.build())


class _Generator:
    """Stateful single-use schedule builder (see :meth:`Schedule.generate`)."""

    #: (kind, weight) palette; fallbacks keep infeasible draws harmless.
    #: ``forge_duplicate_token`` is deliberately absent: it plants a
    #: protocol-unreachable state (two tokens with *identical* membership,
    #: which the seq guard cannot absorb — real duplicates always carry
    #: divergent rings), so it is a fixture op for shrink/replay tests,
    #: not part of the fair-schedule space.  ``long_partition`` is also
    #: absent: it is the resync soak's explicit primitive (CLI/tests); a
    #: fair schedule reaches the same state via ``partition`` + heal.
    PALETTE = [
        ("crash", 14),
        ("partition", 8),
        ("cut_link", 10),
        ("unplug", 6),
        ("flap_nic", 7),
        ("lose_token", 5),
        ("lose_token_in_flight", 4),
        ("false_alarm", 7),
        ("ack_blackout", 7),
        ("duplicate", 10),
        ("burst", 8),
        ("spike", 8),
    ]

    def __init__(self, params: ChaosParams, rng: random.Random) -> None:
        self.params = params
        self.rng = rng
        self.ids = node_names(params.nodes)
        self.segs = segment_names(params.segments)
        self.ops: list[FaultOp] = []
        self.down_until: dict[str, float] = {}
        self.partition_until = 0.0
        self.seg_busy: dict[str, float] = {s: 0.0 for s in self.segs}

    def build(self) -> list[FaultOp]:
        horizon = self.params.seconds
        n_events = max(2, int(horizon * 0.5 * self.params.intensity))
        lead_in = min(0.3, horizon / 4.0)
        times = sorted(
            _r(self.rng.uniform(lead_in, max(lead_in * 1.5, horizon - 0.3)))
            for _ in range(n_events)
        )
        kinds = [k for k, _ in self.PALETTE]
        weights = [w for _, w in self.PALETTE]
        for t in times:
            kind = self.rng.choices(kinds, weights)[0]
            getattr(self, f"_gen_{kind}")(t)
        self.ops.sort(key=lambda op: (op.at, op.kind, repr(op.args)))
        return self.ops

    # -- helpers -------------------------------------------------------
    def _emit(self, at: float, kind: str, *args) -> None:
        self.ops.append(FaultOp(at=_r(at), kind=kind, args=tuple(args)))

    def _window(self, t: float, lo: float, hi: float) -> float:
        """End time for a paired fault starting at ``t``: uniform duration
        clamped so the 'off' op lands inside the run."""
        end = t + self.rng.uniform(lo, hi)
        return _r(min(end, self.params.seconds - 0.05))

    def _up_nodes(self, t: float) -> list[str]:
        return [n for n in self.ids if self.down_until.get(n, 0.0) <= t]

    # -- op generators -------------------------------------------------
    def _gen_crash(self, t: float) -> None:
        up = self._up_nodes(t)
        planned_down = len(self.ids) - len(up)
        if planned_down >= max(1, len(self.ids) // 3) or len(up) <= 2:
            self._gen_lose_token(t)
            return
        node = self.rng.choice(up)
        end = self._window(t, 1.0, 4.0)
        self._emit(t, "crash", node)
        if end > t:
            self._emit(end, "recover", node)
            self.down_until[node] = end
        else:
            self.down_until[node] = self.params.seconds

    def _gen_partition(self, t: float) -> None:
        if self.partition_until > t:
            self._gen_cut_link(t)
            return
        shuffled = self.ids[:]
        self.rng.shuffle(shuffled)
        cut = self.rng.randrange(1, len(shuffled))
        end = self._window(t, 1.0, 3.0)
        self._emit(t, "partition", tuple(sorted(shuffled[:cut])), tuple(sorted(shuffled[cut:])))
        if end > t:
            self._emit(end, "heal_partition")
        self.partition_until = max(end, t + 0.5)

    def _gen_cut_link(self, t: float) -> None:
        a, b = self.rng.sample(self.ids, 2)
        end = self._window(t, 0.5, 2.0)
        self._emit(t, "cut_link", a, b)
        if end > t:
            self._emit(end, "restore_link", a, b)

    def _gen_unplug(self, t: float) -> None:
        if self.params.segments < 2:
            self._gen_lose_token(t)
            return
        node = self.rng.choice(self.ids)
        seg_idx = self.rng.randrange(self.params.segments)
        end = self._window(t, 0.5, 2.0)
        self._emit(t, "unplug", node, seg_idx)
        if end > t:
            self._emit(end, "replug", node, seg_idx)

    def _gen_flap_nic(self, t: float) -> None:
        node = self.rng.choice(self.ids)
        seg_idx = self.rng.randrange(self.params.segments)
        period = _r(self.rng.uniform(0.1, 0.3))
        duration = _r(
            max(0.2, min(self.rng.uniform(0.5, 2.0), self.params.seconds - t - 0.1))
        )
        self._emit(t, "flap_nic", node, seg_idx, period, duration)

    def _gen_lose_token(self, t: float) -> None:
        self._emit(t, "lose_token")

    def _gen_lose_token_in_flight(self, t: float) -> None:
        self._emit(t, "lose_token_in_flight", 0.5)

    def _gen_false_alarm(self, t: float) -> None:
        accuser, victim = self.rng.sample(self.ids, 2)
        self._emit(t, "false_alarm", accuser, victim)

    def _gen_ack_blackout(self, t: float) -> None:
        src, dst = self.rng.sample(self.ids, 2)
        self._emit(t, "ack_blackout", src, dst, _r(self.rng.uniform(0.2, 0.6)))

    def _free_segment(self, t: float) -> str | None:
        free = [s for s in self.segs if self.seg_busy[s] <= t]
        return self.rng.choice(free) if free else None

    def _gen_duplicate(self, t: float) -> None:
        seg = self._free_segment(t)
        if seg is None:
            self._gen_lose_token(t)
            return
        end = self._window(t, 1.0, 4.0)
        self._emit(t, "duplicate", seg, _r(self.rng.uniform(0.05, 0.3)))
        if end > t:
            self._emit(end, "duplicate", seg, 0.0)
        self.seg_busy[seg] = max(end, t + 0.5)

    def _gen_burst(self, t: float) -> None:
        seg = self._free_segment(t)
        if seg is None:
            self._gen_lose_token(t)
            return
        end = self._window(t, 1.0, 3.0)
        self._emit(
            t,
            "burst",
            seg,
            _r(self.rng.uniform(0.02, 0.1)),
            _r(self.rng.uniform(0.2, 0.5)),
            _r(self.rng.uniform(0.7, 1.0)),
        )
        if end > t:
            self._emit(end, "burst_off", seg)
        self.seg_busy[seg] = max(end, t + 0.5)

    def _gen_spike(self, t: float) -> None:
        seg = self._free_segment(t)
        if seg is None:
            self._gen_lose_token(t)
            return
        end = self._window(t, 1.0, 3.0)
        self._emit(
            t,
            "spike",
            seg,
            _r(self.rng.uniform(0.02, 0.1)),
            _r(self.rng.uniform(0.02, 0.08)),
        )
        if end > t:
            self._emit(end, "spike_off", seg)
        self.seg_busy[seg] = max(end, t + 0.5)
