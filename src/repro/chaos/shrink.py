"""Automatic schedule shrinking by delta debugging (ddmin).

When a campaign run fails, the generated schedule typically contains dozens
of fault ops, most of them irrelevant to the failure.  Zeller & Hildebrandt's
ddmin algorithm reduces the op list to a *1-minimal* subset: removing any
single remaining op makes the failure disappear.  Because every candidate is
re-run from the same seed through the full engine, the shrunk trace is a
true standalone reproducer, not a heuristic guess.

Chaos specifics:

* paired ops ("cut at 3s / restore at 5s") may be split apart by shrinking;
  the engine's quiescence phase force-heals all link faults and adversities,
  so an orphaned "on" op is still a well-formed schedule;
* failures under shrinking are accepted if the candidate fails *at all*
  (any failure kind): a schedule that trips a different invariant on the
  way down is still a reproducer worth keeping — the classic ddmin choice.
"""

from __future__ import annotations

from typing import Callable

from repro.chaos.schedule import FaultOp, Schedule

__all__ = ["shrink_schedule", "ddmin"]


def ddmin(
    items: list,
    failing: Callable[[list], bool],
    max_tests: int = 200,
) -> tuple[list, int]:
    """Classic ddmin over ``items``; ``failing(candidate)`` re-runs the test.

    Returns ``(minimal_items, tests_run)``.  ``items`` itself must already
    be failing.  Stops early (returning the best reduction so far) when the
    test budget is exhausted.
    """
    tests = 0
    granularity = 2
    while len(items) >= 2:
        chunk_size = max(1, len(items) // granularity)
        chunks = [
            items[i : i + chunk_size] for i in range(0, len(items), chunk_size)
        ]
        reduced = False
        # Try each chunk alone (reduce to subset) ...
        for chunk in chunks:
            if len(chunk) == len(items):
                continue
            if tests >= max_tests:
                return items, tests
            tests += 1
            if failing(chunk):
                items = chunk
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        # ... then each complement (reduce by removing one chunk).
        if granularity > 2 or len(chunks) > 2:
            for i in range(len(chunks)):
                candidate = [
                    op for j, c in enumerate(chunks) if j != i for op in c
                ]
                if not candidate or len(candidate) == len(items):
                    continue
                if tests >= max_tests:
                    return items, tests
                tests += 1
                if failing(candidate):
                    items = candidate
                    granularity = max(2, granularity - 1)
                    reduced = True
                    break
        if reduced:
            continue
        if granularity >= len(items):
            break
        granularity = min(len(items), granularity * 2)
    return items, tests


def shrink_schedule(
    schedule: Schedule,
    is_failing: Callable[[Schedule], bool],
    max_tests: int = 200,
) -> tuple[Schedule, int]:
    """Shrink a failing schedule to a 1-minimal op list.

    ``is_failing`` runs a candidate schedule through the engine and returns
    True when it still fails.  Returns ``(minimal_schedule, tests_run)``.
    Raises ``ValueError`` if ``schedule`` does not fail to begin with — a
    shrink request for a passing schedule is always a caller bug.
    """
    if not is_failing(schedule):
        raise ValueError("schedule does not fail; nothing to shrink")

    def failing_ops(ops: list[FaultOp]) -> bool:
        return is_failing(schedule.with_ops(ops))

    minimal_ops, tests = ddmin(list(schedule.ops), failing_ops, max_tests=max_tests)
    return schedule.with_ops(minimal_ops), tests + 1
