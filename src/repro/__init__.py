"""repro — reproduction of "The Raincore Distributed Session Service for
Networking Elements" (C. C. Fan & J. Bruck, IPPS 2001).

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.net` — simulated unreliable unicast network (the "UDP").
* :mod:`repro.transport` — Raincore Transport Service (paper §2.1).
* :mod:`repro.core` — Raincore Distributed Session Service (paper §2).
* :mod:`repro.data` — Raincore Distributed Data Service (locks, shared state).
* :mod:`repro.baselines` — broadcast-based comparators (paper §4.1).
* :mod:`repro.apps` — Virtual IP Manager and Rainwall (paper §3).
* :mod:`repro.cluster` — cluster harness and fault injection.
* :mod:`repro.metrics` — experiment reporting helpers.
"""

__version__ = "1.0.1"

from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.core.events import RecordingListener, SessionListener
from repro.core.session import RaincoreNode
from repro.core.token import Ordering

__all__ = [
    "RaincoreCluster",
    "RaincoreConfig",
    "RecordingListener",
    "SessionListener",
    "RaincoreNode",
    "Ordering",
    "__version__",
]
