"""Plain unicast-emulated reliable broadcast — the paper's "M·N" comparator.

Paper §4.1: "Using a broadcast-based protocol, at least M × N task-switching
actions are needed" per second when each of N nodes multicasts M messages
per second, because every node must wake for every other node's every
message.  And on the wire: "when each node needs to multicast one message of
M bytes, there will be (N−1)² packets of M bytes on the network ...  Number
of packets will be doubled if acknowledgements are implemented."

This baseline provides reliability (per-receiver ack + retransmit via the
shared transport) but **no ordering** — it is the cheapest possible
broadcast emulation, which is what makes the comparison conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import BaselineNode

__all__ = ["BroadcastNode", "BcastData"]


@dataclass(frozen=True)
class BcastData:
    """One application payload fanned out to each peer."""

    origin: str
    msg_no: int
    payload: object
    size: int

    def wire_size(self) -> int:
        return 8 + self.size  # origin/msg-no header + payload

    def dedup_key(self) -> tuple:
        return ("bcast", self.origin, self.msg_no)


class BroadcastNode(BaselineNode):
    """Reliable unordered broadcast by N−1 acknowledged unicasts."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._msg_no = 0

    def multicast(self, payload: object, size: int = 64) -> None:
        self._msg_no += 1
        self.charge_send_wakeup()
        self.stats.messages_multicast += 1
        frame = BcastData(self.node_id, self._msg_no, payload, size)
        for peer in self.peers:
            self._send_reliable(peer, frame)
        # Local delivery is immediate: no ordering to coordinate.
        self._deliver_up(self.node_id, payload)

    def _handle(self, src: str, payload: object) -> None:
        if isinstance(payload, BcastData):
            self._deliver_up(payload.origin, payload.payload)
