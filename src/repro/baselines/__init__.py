"""Broadcast-based group-communication comparators (paper §4.1).

Raincore's overhead argument is comparative: per second, with N nodes each
multicasting M messages and the token doing L roundtrips,

=====================  =========================  =====================
protocol               GC task-switches per node  ordering
=====================  =========================  =====================
Raincore token ring    L                          agreed (safe optional)
plain broadcast        ≥ M·N                      none
fixed sequencer        ≈ M·N (2·M·N at sequencer) total
two-phase commit       up to 6·M·N                total
=====================  =========================  =====================

These implementations run over the same simulated network and the same
reliable transport as Raincore, so measured differences come from protocol
structure, not substrate asymmetries.
"""

from repro.baselines.adapter import (
    BaselineCluster,
    RaincoreChannel,
    build_baseline_cluster,
)
from repro.baselines.base import BaselineNode, GroupChannel
from repro.baselines.broadcast import BroadcastNode
from repro.baselines.sequencer import SequencerNode
from repro.baselines.two_phase import TwoPhaseNode

__all__ = [
    "BaselineCluster",
    "RaincoreChannel",
    "build_baseline_cluster",
    "BaselineNode",
    "GroupChannel",
    "BroadcastNode",
    "SequencerNode",
    "TwoPhaseNode",
]
