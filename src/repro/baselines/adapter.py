"""Adapters and builders so benchmarks drive every protocol identically."""

from __future__ import annotations

from typing import Type

from repro.baselines.base import BaselineNode, DeliverCallback, GroupChannel
from repro.cluster.harness import RaincoreCluster
from repro.core.events import Delivery, SessionListener
from repro.core.session import RaincoreNode
from repro.net.datagram import DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.net.topology import Topology, build_switched_cluster
from repro.transport.reliable import TransportConfig

__all__ = ["RaincoreChannel", "BaselineCluster", "build_baseline_cluster"]


class _ForwardingListener(SessionListener):
    def __init__(self) -> None:
        self.callback: DeliverCallback | None = None

    def on_deliver(self, delivery: Delivery) -> None:
        if self.callback is not None:
            self.callback(delivery.origin, delivery.payload)


class RaincoreChannel(GroupChannel):
    """Wrap a :class:`RaincoreNode` as a benchmark :class:`GroupChannel`."""

    def __init__(self, node: RaincoreNode) -> None:
        self.node = node
        if isinstance(node.listener, _ForwardingListener):
            self._listener = node.listener
        else:
            self._listener = _ForwardingListener()
            node.listener = self._listener

    def multicast(self, payload: object, size: int = 64) -> None:
        self.node.multicast(payload, size=size)

    def set_deliver(self, callback: DeliverCallback) -> None:
        self._listener.callback = callback

    @classmethod
    def cluster(cls, cluster: RaincoreCluster) -> dict[str, "RaincoreChannel"]:
        """One channel per already-formed cluster member."""
        return {nid: cls(cluster.node(nid)) for nid in cluster.node_ids}


class BaselineCluster:
    """A set of baseline protocol endpoints on one simulated network."""

    def __init__(
        self,
        node_cls: Type[BaselineNode],
        node_ids: list[str],
        *,
        seed: int = 0,
        latency: float = 100e-6,
        jitter: float = 20e-6,
        loss: float = 0.0,
        transport_config: TransportConfig | None = None,
    ) -> None:
        self.node_ids = list(node_ids)
        self.loop = EventLoop(seed=seed)
        self.topology = Topology()
        build_switched_cluster(
            self.topology, self.node_ids, latency=latency, jitter=jitter, loss=loss
        )
        self.network = DatagramNetwork(self.loop, self.topology)
        self.nodes: dict[str, BaselineNode] = {
            nid: node_cls(
                nid, self.loop, self.network, self.node_ids, transport_config
            )
            for nid in self.node_ids
        }

    def __getitem__(self, node_id: str) -> BaselineNode:
        return self.nodes[node_id]

    @property
    def stats(self):
        return self.network.stats

    def run(self, duration: float) -> None:
        self.loop.run_for(duration)


def build_baseline_cluster(node_cls, node_ids, **kwargs) -> BaselineCluster:
    """Convenience constructor mirroring :class:`RaincoreCluster`'s shape."""
    return BaselineCluster(node_cls, list(node_ids), **kwargs)
