"""Two-phase-commit total-order broadcast — the paper's "6·M·N" comparator.

Paper §4.1: "If a two-phase commit protocol is used to guarantee consistent
ordering, up to 6 × M × N task-switching actions are needed at every node."

We implement the classic coordinator-driven agreed-ordering protocol
(Skeen's algorithm, the ISIS ABCAST ancestor) over unicast:

1. the origin sends ``PROPOSE(msg)`` to every peer;
2. each receiver stamps the message with its logical clock and replies
   ``VOTE(proposed timestamp)``, holding the message back undeliverable;
3. the origin takes the maximum timestamp and sends ``COMMIT(final)``;
4. everyone delivers held-back messages in final-timestamp order once the
   head of the queue is committed and no pending message could be ordered
   before it.

Per multicast this costs every node several GC wakeups (propose, commit,
plus the origin's N−1 votes) and 3·(N−1) acknowledged packets — the paper's
"up to 6·M·N" once acks and retransmissions are counted.  Unlike the plain
broadcast baseline, this one achieves exactly Raincore's agreed ordering,
making the task-switch comparison like-for-like.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.baselines.base import BaselineNode

__all__ = ["TwoPhaseNode", "Propose", "Vote", "Commit"]


@dataclass(frozen=True)
class Propose:
    origin: str
    msg_no: int
    payload: object
    size: int

    def wire_size(self) -> int:
        return 16 + self.size

    def dedup_key(self) -> tuple:
        return ("propose", self.origin, self.msg_no)


@dataclass(frozen=True)
class Vote:
    origin: str  # message origin (coordinator) the vote is for
    msg_no: int
    voter: str
    proposed: int

    def wire_size(self) -> int:
        return 24

    def dedup_key(self) -> tuple:
        return ("vote", self.origin, self.msg_no, self.voter)


@dataclass(frozen=True)
class Commit:
    origin: str
    msg_no: int
    final: int
    tie: str  # origin id reused as the deterministic tie-breaker

    def wire_size(self) -> int:
        return 24

    def dedup_key(self) -> tuple:
        return ("commit", self.origin, self.msg_no)


@dataclass
class _Held:
    origin: str
    msg_no: int
    payload: object
    ts: int  # proposed until committed, then final
    tie: str
    committed: bool = False


class TwoPhaseNode(BaselineNode):
    """Skeen-style total-order broadcast endpoint."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._lc = 0
        self._msg_no = itertools.count(1)
        self._held: dict[tuple[str, int], _Held] = {}
        # Coordinator state: votes collected per in-flight message.
        self._votes: dict[tuple[str, int], list[int]] = {}

    # ------------------------------------------------------------------
    def multicast(self, payload: object, size: int = 64) -> None:
        msg_no = next(self._msg_no)
        self.charge_send_wakeup()
        self.stats.messages_multicast += 1
        key = (self.node_id, msg_no)
        # Our own proposal participates in the vote.
        self._lc += 1
        self._held[key] = _Held(self.node_id, msg_no, payload, self._lc, self.node_id)
        self._votes[key] = [self._lc]
        if not self.peers:
            self._commit(key, self._lc)
            return
        frame = Propose(self.node_id, msg_no, payload, size)
        for peer in self.peers:
            self._send_reliable(peer, frame)

    # ------------------------------------------------------------------
    def _handle(self, src: str, payload: object) -> None:
        if isinstance(payload, Propose):
            self._on_propose(payload)
        elif isinstance(payload, Vote):
            self._on_vote(payload)
        elif isinstance(payload, Commit):
            self._on_commit(payload)

    def _on_propose(self, msg: Propose) -> None:
        self._lc += 1
        key = (msg.origin, msg.msg_no)
        self._held[key] = _Held(msg.origin, msg.msg_no, msg.payload, self._lc, msg.origin)
        self._send_reliable(
            msg.origin, Vote(msg.origin, msg.msg_no, self.node_id, self._lc)
        )

    def _on_vote(self, vote: Vote) -> None:
        key = (vote.origin, vote.msg_no)
        votes = self._votes.get(key)
        if votes is None:
            return  # duplicate/stale vote
        votes.append(vote.proposed)
        if len(votes) == len(self.members):
            final = max(votes)
            del self._votes[key]
            for peer in self.peers:
                self._send_reliable(peer, Commit(vote.origin, vote.msg_no, final, vote.origin))
            self._commit(key, final)

    def _on_commit(self, commit: Commit) -> None:
        self._commit((commit.origin, commit.msg_no), commit.final)

    def _commit(self, key: tuple[str, int], final: int) -> None:
        held = self._held.get(key)
        if held is None or held.committed:
            return
        held.ts = final
        held.committed = True
        self._lc = max(self._lc, final)
        self._try_deliver()

    def _try_deliver(self) -> None:
        """Deliver committed messages that can no longer be preceded.

        A committed message with timestamp t is deliverable when every other
        held message — committed or not — has (ts, tie) greater than
        (t, tie): an uncommitted message's final timestamp can only grow.
        """
        while self._held:
            head_key, head = min(
                self._held.items(), key=lambda kv: (kv[1].ts, kv[1].tie, kv[0][1])
            )
            if not head.committed:
                return
            blocked = any(
                (h.ts, h.tie, k[1]) < (head.ts, head.tie, head_key[1])
                for k, h in self._held.items()
                if k != head_key
            )
            if blocked:  # pragma: no cover - min() choice precludes this
                return
            del self._held[head_key]
            self._deliver_up(head.origin, head.payload)
