"""Fixed-sequencer ordered broadcast — an intermediate ablation point.

Not described in the paper, but the natural midpoint between the plain
broadcast (no ordering, M·N wakeups) and two-phase commit (total order,
up to 6·M·N wakeups): a designated sequencer assigns the global order, so
total order costs one forwarding hop through the sequencer instead of a
vote round.  Its weakness — the sequencer handles ~2·M·N packets and
becomes both hotspot and single point of failure — is one of the reasons
the paper's token design distributes the ordering role around the ring.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.baselines.base import BaselineNode

__all__ = ["SequencerNode", "SeqSubmit", "SeqOrdered"]


@dataclass(frozen=True)
class SeqSubmit:
    """Payload submitted to the sequencer for ordering."""

    origin: str
    msg_no: int
    payload: object
    size: int

    def wire_size(self) -> int:
        return 16 + self.size

    def dedup_key(self) -> tuple:
        return ("submit", self.origin, self.msg_no)


@dataclass(frozen=True)
class SeqOrdered:
    """Sequenced payload fanned out by the sequencer."""

    origin: str
    msg_no: int
    global_seq: int
    payload: object
    size: int

    def wire_size(self) -> int:
        return 24 + self.size

    def dedup_key(self) -> tuple:
        return ("ordered", self.global_seq)


class SequencerNode(BaselineNode):
    """Endpoint of a fixed-sequencer total-order broadcast.

    The sequencer is the lexicographically smallest member, mirroring
    Raincore's lowest-id group-id convention.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._msg_no = itertools.count(1)
        self._global_seq = itertools.count(1)  # used only by the sequencer
        self._next_expected = 1
        self._reorder: dict[int, SeqOrdered] = {}

    @property
    def sequencer_id(self) -> str:
        return min(self.members)

    @property
    def is_sequencer(self) -> bool:
        return self.node_id == self.sequencer_id

    # ------------------------------------------------------------------
    def multicast(self, payload: object, size: int = 64) -> None:
        self.charge_send_wakeup()
        self.stats.messages_multicast += 1
        msg_no = next(self._msg_no)
        if self.is_sequencer:
            self._sequence(SeqSubmit(self.node_id, msg_no, payload, size))
        else:
            self._send_reliable(
                self.sequencer_id, SeqSubmit(self.node_id, msg_no, payload, size)
            )

    # ------------------------------------------------------------------
    def _handle(self, src: str, payload: object) -> None:
        if isinstance(payload, SeqSubmit) and self.is_sequencer:
            self._sequence(payload)
        elif isinstance(payload, SeqOrdered):
            self._on_ordered(payload)

    def _sequence(self, submit: SeqSubmit) -> None:
        ordered = SeqOrdered(
            submit.origin,
            submit.msg_no,
            next(self._global_seq),
            submit.payload,
            submit.size,
        )
        for peer in self.peers:
            self._send_reliable(peer, ordered)
        self._on_ordered(ordered)

    def _on_ordered(self, msg: SeqOrdered) -> None:
        self._reorder[msg.global_seq] = msg
        while self._next_expected in self._reorder:
            ready = self._reorder.pop(self._next_expected)
            self._next_expected += 1
            self._deliver_up(ready.origin, ready.payload)
