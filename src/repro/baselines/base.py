"""Common interface for group-communication comparators (paper §4.1).

The paper's overhead analysis compares Raincore's token-piggybacked
multicast against broadcast-style protocols emulated over unicast.  Every
comparator (and the Raincore adapter) implements :class:`GroupChannel`, so
the benchmark harness can run identical workloads over each and read the
same counters: CPU task-switches, packets and bytes.
"""

from __future__ import annotations

import abc
from typing import Callable

from repro.net.datagram import DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.net.stats import NodeStats
from repro.transport.reliable import ReliableUnicast, TransportConfig

__all__ = ["GroupChannel", "BaselineNode", "DeliverCallback"]

#: (origin node id, payload) delivered to the application.
DeliverCallback = Callable[[str, object], None]


class GroupChannel(abc.ABC):
    """One member's endpoint of a group-communication protocol."""

    @abc.abstractmethod
    def multicast(self, payload: object, size: int = 64) -> None:
        """Reliably send ``payload`` to every member of the group."""

    @abc.abstractmethod
    def set_deliver(self, callback: DeliverCallback) -> None:
        """Install the application delivery callback."""


class BaselineNode(GroupChannel):
    """Shared plumbing for the unicast-emulated broadcast baselines.

    Each baseline node owns a reliable-unicast transport endpoint (the same
    Raincore Transport Service the session layer uses, so acknowledgement
    and retransmission costs are identical across protocols) and a static
    member list — the baselines are overhead comparators, not full
    membership protocols, exactly as in the paper's analysis.
    """

    def __init__(
        self,
        node_id: str,
        loop: EventLoop,
        network: DatagramNetwork,
        members: list[str],
        transport_config: TransportConfig | None = None,
    ) -> None:
        if node_id not in members:
            raise ValueError(f"{node_id!r} must be in the member list")
        self.node_id = node_id
        self.loop = loop
        self.members = list(members)
        self.peers = [m for m in members if m != node_id]
        self.stats: NodeStats = network.stats.for_node(node_id)
        self.transport = ReliableUnicast(node_id, loop, network, transport_config)
        self.transport.set_receiver(self._receive)
        self.transport.start()
        self._deliver: DeliverCallback | None = None
        self.delivered = 0
        # Protocol-level duplicate suppression: infinite retry re-sends a
        # frame under a fresh transport msg-id, so the transport's own
        # dedup cannot catch it.  Frames expose ``dedup_key()``.
        self._seen_frames: set[tuple] = set()

    def set_deliver(self, callback: DeliverCallback) -> None:
        self._deliver = callback

    def charge_send_wakeup(self) -> None:
        """Account the send-side GC activation of one ``multicast`` call.

        Emulating a broadcast requires the GC task to wake and fan the
        message out the moment the application sends it; Raincore instead
        queues locally and batches the fan-out into the next token wakeup.
        This asymmetry is exactly the paper's L vs M·N argument, so each
        baseline charges one wakeup per multicast here.
        """
        self.stats.gc_wakeup(self.loop.now)

    def stop(self) -> None:
        self.transport.stop()

    def _send_reliable(self, peer: str, frame: object) -> None:
        """Send with infinite retry.

        The baselines assume a static, fault-free membership (they are
        overhead comparators, not membership protocols), so a transport
        failure-on-delivery only ever means packet loss outlasted the
        transport's retry budget — keep going until the ack arrives.
        """

        def on_result(ok: bool) -> None:
            if not ok and self.transport.running:
                self._send_reliable(peer, frame)

        self.transport.send(peer, frame, on_result=on_result)

    # ------------------------------------------------------------------
    def _receive(self, src: str, payload: object) -> None:
        """Every protocol packet wakes the GC task — the paper's point."""
        self.stats.gc_wakeup(self.loop.now)
        key_fn = getattr(payload, "dedup_key", None)
        if key_fn is not None:
            key = key_fn()
            if key in self._seen_frames:
                return
            self._seen_frames.add(key)
        self._handle(src, payload)

    def _handle(self, src: str, payload: object) -> None:  # pragma: no cover
        raise NotImplementedError

    def _deliver_up(self, origin: str, payload: object) -> None:
        self.delivered += 1
        self.stats.messages_delivered += 1
        if self._deliver is not None:
            self._deliver(origin, payload)
