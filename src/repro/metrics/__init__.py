"""Reporting helpers for the experiment reproduction benchmarks."""

from repro.metrics.charts import bar_chart
from repro.metrics.report import Table, fmt, ratio
from repro.metrics.analysis import (
    Stats,
    delivery_spreads,
    duplicate_deliveries,
    prefix_consistency_violations,
    summarize,
    view_change_counts,
)
from repro.metrics.trace import (
    TraceEvent,
    TraceRecorder,
    render_swimlanes,
    render_timeline,
)

__all__ = [
    "bar_chart",
    "Table",
    "fmt",
    "ratio",
    "TraceEvent",
    "TraceRecorder",
    "render_timeline",
    "render_swimlanes",
    "Stats",
    "summarize",
    "delivery_spreads",
    "duplicate_deliveries",
    "prefix_consistency_violations",
    "view_change_counts",
]
