"""Experiment reporting: fixed-width and markdown tables for the benchmarks.

Every benchmark in ``benchmarks/`` reproduces one table or figure of the
paper (DESIGN.md §4) and prints its rows through these helpers, so the
output format is uniform and EXPERIMENTS.md can be assembled by copy-paste.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "fmt", "ratio"]


def fmt(value, precision: int = 2) -> str:
    """Human formatting: ints plain, floats to ``precision``, None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 10 ** (-precision)):
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}f}"
    return str(value)


def ratio(a: float, b: float) -> float | None:
    """Safe a/b for speedup columns."""
    return a / b if b else None


@dataclass
class Table:
    """A titled result table with fixed-width and markdown rendering."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # ------------------------------------------------------------------
    def _formatted(self) -> list[list[str]]:
        return [[fmt(c) for c in row] for row in self.rows]

    def render(self) -> str:
        """Fixed-width console rendering."""
        rows = self._formatted()
        widths = [
            max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
            for i, h in enumerate(self.headers)
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        rows = self._formatted()
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in rows:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, mirrors render()
        print("\n" + self.render() + "\n")
