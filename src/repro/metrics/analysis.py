"""Post-run analysis helpers over cluster observations.

The tests and benchmarks repeatedly compute the same derived quantities
from :class:`~repro.core.events.RecordingListener` data — delivery spreads,
order-consistency checks, duplicate scans, view churn.  This module is the
shared, public home for those computations so downstream users analyze
their own scenarios the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.harness import RaincoreCluster

__all__ = [
    "Stats",
    "summarize",
    "delivery_spreads",
    "prefix_consistency_violations",
    "duplicate_deliveries",
    "view_change_counts",
]


@dataclass(frozen=True)
class Stats:
    """Summary statistics of one sample set."""

    count: int
    mean: float
    p50: float
    p95: float
    max: float

    @classmethod
    def empty(cls) -> "Stats":
        return cls(0, 0.0, 0.0, 0.0, 0.0)


def summarize(samples: Sequence[float]) -> Stats:
    """Count/mean/median/p95/max of a sample list."""
    if not samples:
        return Stats.empty()
    ordered = sorted(samples)
    n = len(ordered)
    return Stats(
        count=n,
        mean=sum(ordered) / n,
        p50=ordered[n // 2],
        p95=ordered[min(n - 1, int(0.95 * n))],
        max=ordered[-1],
    )


def delivery_spreads(cluster: "RaincoreCluster") -> Stats:
    """Per-message delivery spread: last-delivery minus first-delivery time
    across nodes.  The spread of an agreed multicast is bounded by one ring
    traversal; growth beyond that signals retransmission storms or churn.
    """
    first: dict[tuple[str, int], float] = {}
    last: dict[tuple[str, int], float] = {}
    for cn in cluster.nodes.values():
        for d in cn.listener.deliveries:
            key = (d.origin, d.msg_no)
            first[key] = min(first.get(key, d.at), d.at)
            last[key] = max(last.get(key, d.at), d.at)
    return summarize([last[k] - first[k] for k in first])


def prefix_consistency_violations(
    orders: dict[str, list[tuple[str, int]]]
) -> list[tuple[str, str]]:
    """Pairs of nodes whose delivery orders disagree on common messages.

    Empty list = the agreed-ordering property (DESIGN.md P5) holds for
    this run.
    """
    violations: list[tuple[str, str]] = []
    items = list(orders.items())
    for i, (node_a, order_a) in enumerate(items):
        set_a = set(order_a)
        for node_b, order_b in items[i + 1:]:
            common = set_a & set(order_b)
            fa = [k for k in order_a if k in common]
            fb = [k for k in order_b if k in common]
            if fa != fb:
                violations.append((node_a, node_b))
    return violations


def duplicate_deliveries(cluster: "RaincoreCluster") -> dict[str, int]:
    """Node id → number of duplicated deliveries (should be all zero)."""
    out: dict[str, int] = {}
    for nid, cn in cluster.nodes.items():
        keys = cn.listener.delivery_keys
        out[nid] = len(keys) - len(set(keys))
    return out


def view_change_counts(cluster: "RaincoreCluster") -> dict[str, int]:
    """Node id → observed view changes (membership churn indicator)."""
    return {nid: len(cn.listener.views) for nid, cn in cluster.nodes.items()}
