"""Protocol event tracing: record and render what the cluster did.

Distributed protocols are debugged with timelines.  :class:`TraceRecorder`
reads the cluster's probe bus (:mod:`repro.obs`) and records a single
time-ordered event log: state transitions, view changes, deliveries,
shutdowns and token hand-offs.  :func:`render_timeline` prints it as an
ASCII table — the output the examples and bug reports are written around.

Historically this module carried its own listener/wiretap plumbing; it is
now a thin view over the probe stream, formatting five probe kinds into
the exact same five trace kinds (golden-tested byte-for-byte).

Usage::

    cluster = RaincoreCluster(["A", "B", "C"], seed=1)
    trace = TraceRecorder(cluster)
    cluster.start_all()
    ...
    print(trace.render())
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.harness import RaincoreCluster
    from repro.obs.probe import ProbeEvent

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "render_timeline",
    "render_swimlanes",
    "events_to_json",
]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    at: float
    node: str
    kind: str  # state | view | deliver | shutdown | token
    detail: str


class TraceRecorder:
    """Attach to a cluster and collect a unified, time-ordered event log.

    Construction enables the cluster's probe bus (idempotent) and
    subscribes; only nodes present at construction are traced (token
    hand-offs are traced cluster-wide, as the old wiretap did).
    """

    def __init__(
        self,
        cluster: "RaincoreCluster",
        *,
        trace_tokens: bool = True,
        trace_deliveries: bool = True,
        max_events: int = 100_000,
    ) -> None:
        self.cluster = cluster
        self.events: list[TraceEvent] = []
        self.max_events = max_events
        self._trace_tokens = trace_tokens
        self._trace_deliveries = trace_deliveries
        self._nodes = set(cluster.node_ids)
        self._bus = cluster.enable_probes()
        self._bus.subscribe(self._on_probe)

    def detach(self) -> None:
        """Stop recording (recorded events are kept)."""
        self._bus.unsubscribe(self._on_probe)

    def _on_probe(self, event: "ProbeEvent") -> None:
        kind = event.kind
        args = event.args
        if kind == "node.state":
            if event.node in self._nodes:
                self._record(event.node, "state", f"{args[0]} -> {args[1]}")
        elif kind == "view.change":
            if event.node in self._nodes:
                self._record(event.node, "view", f"v{args[0]}: {'-'.join(args[1])}")
        elif kind == "mcast.deliver":
            if self._trace_deliveries and event.node in self._nodes:
                self._record(event.node, "deliver", f"{args[0]}#{args[1]} ({args[2]})")
        elif kind == "node.shutdown":
            if event.node in self._nodes:
                self._record(event.node, "shutdown", args[0])
        elif kind == "transport.tx" and self._trace_tokens:
            ctx = args[4]
            if isinstance(ctx, tuple) and ctx and ctx[0] == "tok":
                self._record(
                    event.node,
                    "token",
                    f"seq={ctx[2]} -> {args[0]}"
                    + (f" +{ctx[3]}msg" if ctx[3] else "")
                    + (" TBM" if ctx[4] else ""),
                )

    def _record(self, node: str, kind: str, detail: str) -> None:
        if len(self.events) >= self.max_events:
            return
        self.events.append(
            TraceEvent(self.cluster.loop.now, node, kind, detail)
        )

    # ------------------------------------------------------------------
    def filter(self, kinds: set[str] | None = None, nodes: set[str] | None = None):
        """Events restricted to the given kinds/nodes (None = all)."""
        return [
            e
            for e in self.events
            if (kinds is None or e.kind in kinds)
            and (nodes is None or e.node in nodes)
        ]

    def render(
        self,
        kinds: set[str] | None = None,
        nodes: set[str] | None = None,
        limit: int | None = None,
    ) -> str:
        return render_timeline(self.filter(kinds, nodes), limit=limit)

    def clear(self) -> None:
        self.events.clear()


def render_swimlanes(
    events: list[TraceEvent],
    nodes: list[str],
    limit: int | None = None,
    lane_width: int = 22,
) -> str:
    """Per-node column rendering — the classic distributed-systems swimlane.

    Each event appears in its node's lane; reading down a column gives one
    node's history, reading across gives the cluster-wide interleaving.
    """
    shown = events[:limit] if limit is not None else list(events)
    if not shown:
        return "(no events)"
    header = f"{'time':>10}  " + "  ".join(f"{n:^{lane_width}}" for n in nodes)
    lines = [header, "-" * len(header)]
    for e in shown:
        cells = []
        for n in nodes:
            text = f"{e.kind}: {e.detail}" if e.node == n else ""
            cells.append(f"{text[:lane_width]:<{lane_width}}")
        lines.append(f"{e.at:>9.4f}s  " + "  ".join(cells))
    if limit is not None and len(events) > limit:
        lines.append(f"... {len(events) - limit} more events")
    return "\n".join(lines)


def render_timeline(events: list[TraceEvent], limit: int | None = None) -> str:
    """Fixed-width timeline rendering of a trace-event list."""
    if limit is not None and len(events) > limit:
        shown = events[:limit]
        footer = f"... {len(events) - limit} more events"
    else:
        shown = list(events)
        footer = None
    if not shown:
        return "(no events)"
    node_w = max(len(e.node) for e in shown)
    kind_w = max(len(e.kind) for e in shown)
    lines = [
        f"{e.at:>10.4f}s  {e.node:<{node_w}}  {e.kind:<{kind_w}}  {e.detail}"
        for e in shown
    ]
    if footer:
        lines.append(footer)
    return "\n".join(lines)


def events_to_json(events: list[TraceEvent]) -> str:
    """Stable JSON array of trace events (``repro trace --json``)."""
    return json.dumps(
        [
            {"at": e.at, "node": e.node, "kind": e.kind, "detail": e.detail}
            for e in events
        ],
        sort_keys=True,
        indent=2,
    )
