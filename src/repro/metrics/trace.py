"""Protocol event tracing: record and render what the cluster did.

Distributed protocols are debugged with timelines.  :class:`TraceRecorder`
hooks a :class:`~repro.cluster.harness.RaincoreCluster` (listeners on every
node plus the network's wiretap) and records a single time-ordered event
log: state transitions, view changes, deliveries, shutdowns and token
hand-offs.  :func:`render_timeline` prints it as an ASCII table — the
output the examples and bug reports are written around.

Usage::

    cluster = RaincoreCluster(["A", "B", "C"], seed=1)
    trace = TraceRecorder(cluster)
    cluster.start_all()
    ...
    print(trace.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.events import Delivery, SessionListener, ViewChange
from repro.core.token import Token

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.harness import RaincoreCluster

__all__ = ["TraceEvent", "TraceRecorder", "render_timeline", "render_swimlanes"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    at: float
    node: str
    kind: str  # state | view | deliver | shutdown | token
    detail: str


class _NodeTracer(SessionListener):
    def __init__(self, recorder: "TraceRecorder", node_id: str) -> None:
        self.recorder = recorder
        self.node_id = node_id

    def on_state_change(self, old, new) -> None:
        self.recorder._record(self.node_id, "state", f"{old.value} -> {new.value}")

    def on_view_change(self, view: ViewChange) -> None:
        self.recorder._record(
            self.node_id, "view", f"v{view.view_id}: {'-'.join(view.members)}"
        )

    def on_deliver(self, delivery: Delivery) -> None:
        self.recorder._record(
            self.node_id,
            "deliver",
            f"{delivery.origin}#{delivery.msg_no} ({delivery.ordering.value})",
        )

    def on_shutdown(self, reason: str) -> None:
        self.recorder._record(self.node_id, "shutdown", reason)


class TraceRecorder:
    """Attach to a cluster and collect a unified, time-ordered event log."""

    def __init__(
        self,
        cluster: "RaincoreCluster",
        *,
        trace_tokens: bool = True,
        trace_deliveries: bool = True,
        max_events: int = 100_000,
    ) -> None:
        from repro.core.events import ensure_composite

        self.cluster = cluster
        self.events: list[TraceEvent] = []
        self.max_events = max_events
        self._trace_deliveries = trace_deliveries
        for node_id in cluster.node_ids:
            tracer = _NodeTracer(self, node_id)
            if not trace_deliveries:
                tracer.on_deliver = lambda d: None  # type: ignore[method-assign]
            ensure_composite(cluster.node(node_id)).add(tracer)
        if trace_tokens:
            previous = cluster.network.trace

            def tap(packet, sent_ok):
                if previous is not None:
                    previous(packet, sent_ok)
                frame = packet.payload
                payload = getattr(frame, "payload", None)
                if isinstance(payload, Token):
                    src = cluster.topology.owner_of(packet.src)
                    dst = cluster.topology.owner_of(packet.dst)
                    self._record(
                        src,
                        "token",
                        f"seq={payload.seq} -> {dst}"
                        + (f" +{len(payload.messages)}msg" if payload.messages else "")
                        + (" TBM" if payload.tbm else ""),
                    )

            cluster.network.trace = tap

    def _record(self, node: str, kind: str, detail: str) -> None:
        if len(self.events) >= self.max_events:
            return
        self.events.append(
            TraceEvent(self.cluster.loop.now, node, kind, detail)
        )

    # ------------------------------------------------------------------
    def filter(self, kinds: set[str] | None = None, nodes: set[str] | None = None):
        """Events restricted to the given kinds/nodes (None = all)."""
        return [
            e
            for e in self.events
            if (kinds is None or e.kind in kinds)
            and (nodes is None or e.node in nodes)
        ]

    def render(
        self,
        kinds: set[str] | None = None,
        nodes: set[str] | None = None,
        limit: int | None = None,
    ) -> str:
        return render_timeline(self.filter(kinds, nodes), limit=limit)

    def clear(self) -> None:
        self.events.clear()


def render_swimlanes(
    events: list[TraceEvent],
    nodes: list[str],
    limit: int | None = None,
    lane_width: int = 22,
) -> str:
    """Per-node column rendering — the classic distributed-systems swimlane.

    Each event appears in its node's lane; reading down a column gives one
    node's history, reading across gives the cluster-wide interleaving.
    """
    shown = events[:limit] if limit is not None else list(events)
    if not shown:
        return "(no events)"
    header = f"{'time':>10}  " + "  ".join(f"{n:^{lane_width}}" for n in nodes)
    lines = [header, "-" * len(header)]
    for e in shown:
        cells = []
        for n in nodes:
            text = f"{e.kind}: {e.detail}" if e.node == n else ""
            cells.append(f"{text[:lane_width]:<{lane_width}}")
        lines.append(f"{e.at:>9.4f}s  " + "  ".join(cells))
    if limit is not None and len(events) > limit:
        lines.append(f"... {len(events) - limit} more events")
    return "\n".join(lines)


def render_timeline(events: list[TraceEvent], limit: int | None = None) -> str:
    """Fixed-width timeline rendering of a trace-event list."""
    if limit is not None and len(events) > limit:
        shown = events[:limit]
        footer = f"... {len(events) - limit} more events"
    else:
        shown = list(events)
        footer = None
    if not shown:
        return "(no events)"
    node_w = max(len(e.node) for e in shown)
    kind_w = max(len(e.kind) for e in shown)
    lines = [
        f"{e.at:>10.4f}s  {e.node:<{node_w}}  {e.kind:<{kind_w}}  {e.detail}"
        for e in shown
    ]
    if footer:
        lines.append(footer)
    return "\n".join(lines)
