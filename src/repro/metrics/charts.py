"""ASCII bar charts — terminal rendering of the paper's Figure 3.

The paper's single figure is a bar chart of Rainwall throughput vs cluster
size.  :func:`bar_chart` reproduces it in fixed-width text so the benchmark
output and the CLI can show the *figure*, not just the table, with no
plotting dependency.
"""

from __future__ import annotations

__all__ = ["bar_chart"]


def bar_chart(
    title: str,
    labels: list[str],
    values: list[float],
    *,
    width: int = 50,
    unit: str = "",
    reference: dict[str, float] | None = None,
) -> str:
    """Render horizontal bars scaled to ``width`` characters.

    ``reference`` optionally adds a second, hollow bar per label (the
    paper's numbers next to ours).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return title + "\n(no data)"
    peak = max(
        list(values)
        + (list(reference.values()) if reference else [])
    )
    if peak <= 0:
        peak = 1.0
    label_w = max(len(str(l)) for l in labels)
    if reference:
        label_w = max(label_w, max(len(f"{l} (ref)") for l in reference))
    lines = [title, "=" * len(title)]
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(value / peak * width))
        lines.append(f"{label!s:>{label_w}} | {bar} {value:,.1f}{unit}")
        if reference and label in reference:
            ref = reference[label]
            hollow = "." * max(1, round(ref / peak * width))
            lines.append(f"{f'{label} (ref)':>{label_w}} | {hollow} {ref:,.1f}{unit}")
    return "\n".join(lines)
