"""Raincore Transport Service (paper §2.1).

Atomic reliable unicast with acknowledgement, redundant-link multipath, and
failure-on-delivery notification — the local-view failure detector that
drives the session layer's aggressive membership protocol.
"""

from repro.transport.messages import (
    TRANSPORT_HEADER,
    UDP_IP_HEADER,
    AckFrame,
    DataFrame,
    WireSized,
    frame_size,
)
from repro.transport.multipath import AddressPlan, SendStrategy, plan_routes
from repro.transport.reliable import ReliableUnicast, TransportConfig

__all__ = [
    "TRANSPORT_HEADER",
    "UDP_IP_HEADER",
    "AckFrame",
    "DataFrame",
    "WireSized",
    "frame_size",
    "AddressPlan",
    "SendStrategy",
    "plan_routes",
    "ReliableUnicast",
    "TransportConfig",
]
