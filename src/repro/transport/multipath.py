"""Multi-address sending strategies over redundant links (paper §2.1 item 2).

A Raincore node may own several physical addresses (NICs on redundant
segments).  The Transport Service can target a peer's addresses either

* ``SEQUENTIAL`` — try address 1 for the full retry budget of that address,
  then address 2, and so on; cheap, but fail-over to the second link waits
  for the first link's retries to exhaust; or
* ``PARALLEL`` — every (re)transmission is sent on *all* address pairs at
  once; duplicates are suppressed by the receiver; fastest fail-over at the
  cost of extra packets.

The plan enumerates ``(src_address, dst_address)`` pairs so a node with two
NICs talking to a peer with two NICs uses matching segments where possible
(NIC k ↔ segment shared with peer NIC k).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.topology import Topology

__all__ = ["SendStrategy", "AddressPlan", "plan_routes"]


class SendStrategy(enum.Enum):
    """How redundant address pairs are exercised by the transport."""

    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"


@dataclass(frozen=True)
class AddressPlan:
    """Ordered list of usable ``(src_addr, dst_addr)`` pairs for one peer."""

    pairs: tuple[tuple[str, str], ...]

    def __len__(self) -> int:
        return len(self.pairs)

    def __bool__(self) -> bool:
        return bool(self.pairs)


def plan_routes(topology: Topology, src_node: str, dst_node: str) -> AddressPlan:
    """Enumerate address pairs from ``src_node`` to ``dst_node``.

    Pairs are ordered with same-segment matches first (NIC k to NIC k on the
    shared segment), because redundant deployments pair NICs segment-by-
    segment.  Only pairs that share a segment in the *static* topology are
    included; dynamic conditions (downed NICs, partitions) are checked by
    the datagram layer per packet, since the whole point of redundancy is to
    keep trying pairs whose links may have silently failed.
    """
    pairs: list[tuple[str, str]] = []
    for src_addr in topology.addresses_of(src_node):
        try:
            src_seg = topology.segment_of(src_addr)
        except KeyError:  # pragma: no cover - attach() always adds a segment
            continue
        for dst_addr in topology.addresses_of(dst_node):
            if dst_addr in src_seg.attached:
                pairs.append((src_addr, dst_addr))
    return AddressPlan(tuple(pairs))
