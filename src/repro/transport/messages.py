"""Wire framing for the Raincore Transport Service.

The transport exchanges two frame types over the unreliable datagram layer:

* ``DATA`` — carries one upper-layer message (a session-layer object that
  reports its own modelled wire size via ``wire_size()``), tagged with a
  per-sender message id used for acknowledgement and duplicate suppression.
* ``ACK`` — acknowledges one DATA frame by id.

Sizes are modelled, not serialized: each frame adds the UDP/IP header cost
plus a small transport header, which is what the paper's §4.1 byte
arithmetic counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

__all__ = [
    "UDP_IP_HEADER",
    "TRANSPORT_HEADER",
    "WireSized",
    "DataFrame",
    "AckFrame",
    "BareFrame",
    "frame_size",
    "trace_context_of",
    "SESSION_MESSAGES",
    "STREAM_MESSAGES",
    "session_message",
    "stream_message",
    "session_message_kinds",
    "stream_message_kinds",
    "registered_kinds",
]

#: Registry of top-level session-layer message classes: everything the
#: transport may hand to a session ``_receive`` dispatcher.  Populated by
#: the :func:`session_message` decorator; audited statically by raincheck
#: rule RC201 (every registered class must have an ``isinstance`` arm in a
#: ``_receive`` handler) — see docs/DETERMINISM.md.
SESSION_MESSAGES: dict[str, type] = {}

#: Registry of stream-tier protocol messages: wire payloads that ride the
#: agreed-ordered multicast and are dispatched by a replica ``on_deliver``
#: isinstance chain (the PR 6 resync ladder lives here).  Kept separate
#: from :data:`SESSION_MESSAGES` because the transport never dispatches
#: them directly — their carrier (the token's piggyback) does — but they
#: are protocol surface all the same: rainspec's RC5xx conformance pass
#: and the ``repro spec`` drift gate audit both tiers.
STREAM_MESSAGES: dict[str, type] = {}


def session_message(cls: type) -> type:
    """Register ``cls`` as a dispatchable session-layer message.

    Nested payloads that only ride *inside* another message (e.g. the
    token's piggybacked multicasts) are deliberately not registered here:
    they are unpacked by their carrier, not dispatched by the transport.
    Protocol payloads dispatched off the agreed stream register with
    :func:`stream_message` instead.
    """
    SESSION_MESSAGES[cls.__name__] = cls
    return cls


def stream_message(cls: type) -> type:
    """Register ``cls`` as a stream-tier protocol message (see above)."""
    STREAM_MESSAGES[cls.__name__] = cls
    return cls


def session_message_kinds() -> tuple[str, ...]:
    """Sorted session-message kind names.

    Registration happens in import order, which is an accident of module
    topology; every consumer that renders or diffs the kind table
    (rainspec, RC2xx/RC5xx findings, ``repro spec render``) reads this
    sorted view so outputs stay byte-deterministic across import orders.
    """
    return tuple(sorted(SESSION_MESSAGES))


def stream_message_kinds() -> tuple[str, ...]:
    """Sorted stream-message kind names (same determinism contract)."""
    return tuple(sorted(STREAM_MESSAGES))


def registered_kinds() -> tuple[str, ...]:
    """Sorted union of both registry tiers."""
    return tuple(sorted(SESSION_MESSAGES | STREAM_MESSAGES))

#: Modelled overhead of one UDP/IPv4 datagram (20 IP + 8 UDP bytes).
UDP_IP_HEADER = 28
#: Modelled Raincore transport header (msg id, node ids, flags).
TRANSPORT_HEADER = 16


@runtime_checkable
class WireSized(Protocol):
    """Anything the transport can carry: must report a wire size in bytes."""

    def wire_size(self) -> int: ...  # pragma: no cover


def _payload_size(payload: Any) -> int:
    # Duck-typed on purpose: ``isinstance`` against a runtime_checkable
    # Protocol walks the whole method table per call, and payload_size sits
    # on the per-packet path of every transmission and retransmission.
    size = getattr(payload, "wire_size", None)
    if size is not None:
        return size()
    if isinstance(payload, (bytes, bytearray, str)):
        return len(payload)
    raise TypeError(f"payload {payload!r} has no wire_size() and is not bytes/str")


@dataclass(frozen=True, slots=True)
class DataFrame:
    """A transport DATA frame: one atomic, acknowledged unicast payload."""

    src_node: str
    dst_node: str
    msg_id: int
    payload: Any

    def payload_size(self) -> int:
        return _payload_size(self.payload)


@dataclass(frozen=True, slots=True)
class AckFrame:
    """Acknowledges receipt of DATA frame ``msg_id`` from ``dst_node``."""

    src_node: str
    dst_node: str
    msg_id: int


@dataclass(frozen=True, slots=True)
class BareFrame:
    """An unacknowledged, fire-and-forget payload (discovery beacons).

    The BODYODOR beacon (paper §2.4) is "a small message sent with a
    regular, but low frequency"; it needs neither acknowledgement nor
    retransmission — the next beacon is its retry.
    """

    src_node: str
    dst_node: str
    payload: Any

    def payload_size(self) -> int:
        return _payload_size(self.payload)


def frame_size(frame: DataFrame | AckFrame | BareFrame) -> int:
    """Modelled on-the-wire size of a transport frame in bytes."""
    if type(frame) is AckFrame:
        return UDP_IP_HEADER + TRANSPORT_HEADER
    return UDP_IP_HEADER + TRANSPORT_HEADER + frame.payload_size()


def trace_context_of(payload: Any) -> tuple | None:
    """Wire-carried causal trace context of a payload, if it has one.

    Session-layer objects opt in by defining ``trace_context()`` (the token
    does — lineage id, seq, piggyback count).  The context is *modelled* as
    riding inside the fixed :data:`TRANSPORT_HEADER` / token-header byte
    allowances — identifiers this small fit the headers' slack — so
    enabling observability never changes modelled packet sizes.  Duck-typed
    for the same layering reason as :func:`_payload_size`: the transport
    cannot import session-layer types.
    """
    fn = getattr(payload, "trace_context", None)
    return fn() if fn is not None else None
