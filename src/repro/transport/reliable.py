"""Atomic reliable unicast with failure-on-delivery — paper §2.1.

The Raincore Transport Service differs from TCP in three ways the paper
enumerates, all reflected here:

1. **Atomic, connectionless** — each ``send`` is an independent acknowledged
   datagram; a payload is delivered whole or not at all, and there is no
   connection state to reconcile when nodes come and go.
2. **Multiple physical addresses** — a peer is addressed by *node id*; the
   transport fans out over redundant NIC pairs using a
   :class:`~repro.transport.multipath.SendStrategy`.
3. **Notification both ways** — the caller receives an explicit success
   notification (ack received) or a **failure-on-delivery** notification
   when every attempt on every address pair has been exhausted.  The
   failure notification is the session layer's local-view failure detector:
   Raincore's aggressive membership protocol removes a peer the moment the
   transport gives up on it (paper §2.2).

Duplicate DATA frames (caused by lost acks or PARALLEL multipath) are
suppressed with a bounded per-peer window, and every DATA frame is re-acked
so the sender can complete.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.net.datagram import Datagram, DatagramNetwork
from repro.net.eventloop import EventLoop, TimerHandle
from repro.net.stats import NodeStats
from repro.net.topology import Topology
from repro.transport.messages import (
    TRANSPORT_HEADER,
    UDP_IP_HEADER,
    AckFrame,
    BareFrame,
    DataFrame,
    frame_size,
    trace_context_of,
)
from repro.transport.multipath import AddressPlan, SendStrategy, plan_routes

__all__ = ["TransportConfig", "ReliableUnicast", "ReceiveHandler", "ResultHandler"]

#: Upper-layer receive callback: (source node id, payload object).
ReceiveHandler = Callable[[str, Any], None]
#: Delivery outcome callback: True = acked, False = failure-on-delivery.
ResultHandler = Callable[[bool], None]

#: ACK frames carry no payload, so their wire size is a constant.
_ACK_SIZE = UDP_IP_HEADER + TRANSPORT_HEADER


@dataclass(slots=True)
class TransportConfig:
    """Timing and redundancy knobs for the reliable unicast service.

    ``retx_timeout`` and ``attempts_per_route`` bound how long the transport
    tries before declaring failure-on-delivery; with SEQUENTIAL strategy the
    worst-case detection latency is
    ``attempts_per_route * retx_timeout * n_routes``.
    Defaults suit a low-latency LAN (paper §4.1's premise) and give
    sub-200 ms failure detection on a single link.
    """

    retx_timeout: float = 0.05
    attempts_per_route: int = 3
    strategy: SendStrategy = SendStrategy.SEQUENTIAL
    dedup_window: int = 4096
    #: Hard bound on bytes held across in-flight (retransmittable) sends.
    #: A send that would exceed it is shed with an immediate asynchronous
    #: failure-on-delivery — bounded buffers beat unbounded backlog, and
    #: the session layer already handles delivery failure (paper §2.1).
    max_pending_bytes: int = 1_048_576

    def __post_init__(self) -> None:
        if self.retx_timeout <= 0.0:
            raise ValueError("retx_timeout must be positive")
        if self.attempts_per_route < 1:
            raise ValueError("attempts_per_route must be at least 1")
        if self.dedup_window < 1:
            raise ValueError("dedup_window must be at least 1")
        if self.max_pending_bytes < 1:
            raise ValueError("max_pending_bytes must be at least 1")

    def failure_detection_bound(self, n_routes: int = 1) -> float:
        """Worst-case seconds before failure-on-delivery fires."""
        if self.strategy is SendStrategy.SEQUENTIAL:
            return self.retx_timeout * self.attempts_per_route * max(1, n_routes)
        return self.retx_timeout * self.attempts_per_route


@dataclass(slots=True)
class _PendingSend:
    """Book-keeping for one in-flight acknowledged unicast."""

    frame: DataFrame
    plan: AddressPlan
    on_result: ResultHandler | None
    size: int = 0  # enqueue-time wire size, for the pending-bytes budget
    route_index: int = 0
    attempts_on_route: int = 0
    rounds: int = 0  # parallel strategy: completed all-routes rounds
    sends: int = 0  # total transmission rounds, for the transport.tx probe
    timer: TimerHandle | None = None
    done: bool = False


class ReliableUnicast:
    """Per-node Raincore Transport Service endpoint.

    One instance lives on each node; it binds all of the node's NIC
    addresses on the datagram network and exposes node-id-level ``send``.
    """

    def __init__(
        self,
        node_id: str,
        loop: EventLoop,
        network: DatagramNetwork,
        config: TransportConfig | None = None,
    ) -> None:
        self.node_id = node_id
        self.loop = loop
        self.network = network
        self.topology: Topology = network.topology
        self.config = config if config is not None else TransportConfig()
        self.stats: NodeStats = network.stats.for_node(node_id)
        # Optional probe bus (repro.obs); None keeps the hot path probe-free.
        self.probe = None
        self._receiver: ReceiveHandler | None = None
        self._msg_ids = itertools.count(1)
        self._pending: dict[int, _PendingSend] = {}
        self._pending_bytes = 0
        self.sheds = 0  #: sends refused by the pending-bytes budget
        # Duplicate suppression: peer -> (set of ids, FIFO of ids).
        self._seen: dict[str, tuple[set[int], deque[int]]] = {}
        self._running = False
        # Address plans are pure functions of the static topology (NIC
        # attachments), which bumps ``version`` whenever they change; cache
        # one plan per peer and flush on any topology mutation.
        self._plans: dict[str, AddressPlan] = {}
        self._plans_version = -1

    def _plan_for(self, dst_node: str) -> AddressPlan:
        version = self.topology.version
        if version != self._plans_version:
            self._plans.clear()
            self._plans_version = version
        plan = self._plans.get(dst_node)
        if plan is None:
            plan = self._plans[dst_node] = plan_routes(
                self.topology, self.node_id, dst_node
            )
        return plan

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind every NIC address of this node; idempotent."""
        for addr in self.topology.addresses_of(self.node_id):
            self.network.bind(addr, self._on_packet)
        self._running = True

    def stop(self) -> None:
        """Unbind and abandon all in-flight sends (node shutdown/crash)."""
        self._running = False
        for addr in self.topology.addresses_of(self.node_id):
            self.network.unbind(addr)
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
            pending.done = True
        self._pending.clear()
        self._pending_bytes = 0

    @property
    def running(self) -> bool:
        return self._running

    def set_receiver(self, handler: ReceiveHandler) -> None:
        """Install the upper-layer payload handler."""
        self._receiver = handler

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self, dst_node: str, payload: Any, on_result: ResultHandler | None = None
    ) -> int:
        """Reliably unicast ``payload`` to ``dst_node``.

        Returns the transport message id.  ``on_result`` fires exactly once:
        ``True`` on acknowledgement, ``False`` on failure-on-delivery.  The
        failure path is always asynchronous (scheduled on the loop), even
        when no route exists, so callers can rely on callback ordering.
        """
        if not self._running:
            raise RuntimeError(f"transport on {self.node_id!r} is not started")
        if dst_node == self.node_id:
            raise ValueError("transport does not loop back to self")
        msg_id = next(self._msg_ids)
        frame = DataFrame(self.node_id, dst_node, msg_id, payload)
        plan = self._plan_for(dst_node)
        size = frame_size(frame)
        pending = _PendingSend(
            frame=frame, plan=plan, on_result=on_result, size=size
        )
        self._pending[msg_id] = pending
        if self._pending_bytes + size > self.config.max_pending_bytes:
            # Budget shed: refuse to grow the retransmit buffer past its
            # bound.  Same (async) failure path callers already handle.
            self.sheds += 1
            pending.size = 0
            self.loop.call_later(0.0, self._finish, msg_id, False)
            return msg_id
        self._pending_bytes += size
        if not plan:
            # No shared segment at all: immediate (but async) failure.
            self.loop.call_later(0.0, self._finish, msg_id, False)
            return msg_id
        self._transmit(pending)
        return msg_id

    def send_best_effort(self, dst_node: str, payload: Any) -> None:
        """Fire-and-forget unicast: one datagram, no ack, no retransmit.

        Used for discovery beacons (paper §2.4), whose natural retry is the
        next beacon.  Silently does nothing when no route exists.
        """
        if not self._running:
            raise RuntimeError(f"transport on {self.node_id!r} is not started")
        plan = self._plan_for(dst_node)
        if not plan:
            return
        frame = BareFrame(self.node_id, dst_node, payload)
        src_addr, dst_addr = plan.pairs[0]
        self.network.send(src_addr, dst_addr, frame, frame_size(frame))

    def cancel(self, msg_id: int) -> None:
        """Abandon an in-flight send without firing its callback."""
        pending = self._pending.pop(msg_id, None)
        if pending is not None:
            pending.done = True
            self._pending_bytes -= pending.size
            if pending.timer is not None:
                pending.timer.cancel()

    def pending_count(self) -> int:
        return len(self._pending)

    def buffered_bytes(self) -> int:
        """Bytes held by in-flight (retransmittable) sends."""
        return self._pending_bytes

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _transmit(self, pending: _PendingSend) -> None:
        frame = pending.frame
        # Recomputed per transmission on purpose: the payload may be the
        # live token object, whose wire size can change between the first
        # send and a retransmission (the model serializes at transmit time).
        size = frame_size(frame)
        probe = self.probe
        if probe is not None:
            # The trace context is read from the live payload *now* — at
            # transmit time — so it reflects exactly what this transmission
            # carries (a retransmitted token may have changed underneath).
            probe.emit(
                self.node_id,
                "transport.tx",
                frame.dst_node,
                frame.msg_id,
                pending.sends,
                type(frame.payload).__name__,
                trace_context_of(frame.payload),
            )
        pending.sends += 1
        cfg = self.config
        if cfg.strategy is SendStrategy.PARALLEL:
            for src_addr, dst_addr in pending.plan.pairs:
                self.network.send(src_addr, dst_addr, frame, size)
            pending.rounds += 1
            if pending.rounds >= cfg.attempts_per_route:
                pending.timer = self.loop.call_later(
                    cfg.retx_timeout, self._finish, frame.msg_id, False
                )
            else:
                pending.timer = self.loop.call_later(
                    cfg.retx_timeout, self._retransmit, frame.msg_id
                )
            return

        # SEQUENTIAL: exhaust the retry budget on one route, then advance.
        src_addr, dst_addr = pending.plan.pairs[pending.route_index]
        self.network.send(src_addr, dst_addr, frame, size)
        pending.attempts_on_route += 1
        exhausted_route = pending.attempts_on_route >= cfg.attempts_per_route
        last_route = pending.route_index >= len(pending.plan) - 1
        if exhausted_route and last_route:
            pending.timer = self.loop.call_later(
                cfg.retx_timeout, self._finish, frame.msg_id, False
            )
        else:
            pending.timer = self.loop.call_later(
                cfg.retx_timeout, self._retransmit, frame.msg_id
            )

    def _retransmit(self, msg_id: int) -> None:
        pending = self._pending.get(msg_id)
        if pending is None or pending.done:
            return
        if self.config.strategy is SendStrategy.SEQUENTIAL:
            if pending.attempts_on_route >= self.config.attempts_per_route:
                pending.route_index += 1
                pending.attempts_on_route = 0
        self._transmit(pending)

    def _finish(self, msg_id: int, success: bool) -> None:
        pending = self._pending.pop(msg_id, None)
        if pending is None or pending.done:
            return
        pending.done = True
        self._pending_bytes -= pending.size
        if pending.timer is not None:
            pending.timer.cancel()
        probe = self.probe
        if probe is not None and not success:
            probe.emit(
                self.node_id, "transport.fail", pending.frame.dst_node, msg_id
            )
        if pending.on_result is not None:
            pending.on_result(success)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Datagram) -> None:
        frame = packet.payload
        if isinstance(frame, AckFrame):
            self._on_ack(frame)
        elif isinstance(frame, DataFrame):
            self._on_data(packet, frame)
        elif isinstance(frame, BareFrame):
            if frame.dst_node == self.node_id and self._receiver is not None:
                self._receiver(frame.src_node, frame.payload)
        # Anything else is silently ignored, as a UDP service would.

    def _on_ack(self, frame: AckFrame) -> None:
        if frame.dst_node != self.node_id:
            return
        probe = self.probe
        if probe is not None and frame.msg_id in self._pending:
            probe.emit(self.node_id, "transport.ack", frame.src_node, frame.msg_id)
        self._finish(frame.msg_id, True)

    def _on_data(self, packet: Datagram, frame: DataFrame) -> None:
        if frame.dst_node != self.node_id:
            return
        # Always (re-)ack on the reverse path: the original ack may be lost.
        ack = AckFrame(self.node_id, frame.src_node, frame.msg_id)
        self.network.send(packet.dst, packet.src, ack, _ACK_SIZE)
        dup = self._is_duplicate(frame.src_node, frame.msg_id)
        probe = self.probe
        if probe is not None:
            probe.emit(self.node_id, "transport.rx", frame.src_node, frame.msg_id, dup)
        if dup:
            return
        if self._receiver is not None:
            self._receiver(frame.src_node, frame.payload)

    def _is_duplicate(self, peer: str, msg_id: int) -> bool:
        if peer not in self._seen:
            self._seen[peer] = (set(), deque())
        ids, fifo = self._seen[peer]
        if msg_id in ids:
            return True
        ids.add(msg_id)
        fifo.append(msg_id)
        if len(fifo) > self.config.dedup_window:
            ids.discard(fifo.popleft())
        return False
