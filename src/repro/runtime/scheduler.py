"""Asyncio-backed scheduler: the real-time twin of the simulation loop.

The protocol core (:class:`~repro.core.session.RaincoreNode` and everything
under it) consumes only three things from its "loop": ``now``,
``call_later(delay, cb, *args)`` returning a cancellable handle, and a
seeded ``rng``.  The simulator's :class:`~repro.net.eventloop.EventLoop`
provides them over virtual time; this adapter provides them over a running
:mod:`asyncio` loop, which is how the same untouched protocol code runs on
real UDP sockets (paper deployments ran on real networks — this driver is
the reproduction's existence proof that nothing in the protocol depends on
the simulator).
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable

__all__ = ["AsyncioScheduler"]


class AsyncioScheduler:
    """Adapter exposing the simulator's scheduling interface over asyncio."""

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None, seed: int = 0):
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Monotonic seconds, the asyncio loop's clock."""
        return self._loop.time()

    def call_later(
        self, delay: float, callback: Callable[..., None], *args: Any, priority: int = 0
    ):
        """Schedule ``callback(*args)``; returns a handle with ``cancel()``.

        ``priority`` is accepted for interface compatibility and ignored —
        wall-clock time does not produce exact ties.
        """
        return self._loop.call_later(delay, callback, *args)

    def call_at(self, when: float, callback: Callable[..., None], *args: Any, priority: int = 0):
        return self._loop.call_at(when, callback, *args)
