"""Real-time runtime: the protocol stack over asyncio + real UDP sockets.

The session service is driver-agnostic: it consumes a scheduler (``now`` /
``call_later`` / ``rng``) and a datagram fabric (``bind`` / ``send`` /
``topology`` / ``stats``).  :class:`AsyncioScheduler` and
:class:`UdpFabric` provide real-time implementations so the identical
protocol code that runs deterministically in the simulator also runs on
localhost UDP — see ``examples/asyncio_udp_demo.py``.
"""

from repro.runtime.scheduler import AsyncioScheduler
from repro.runtime.udp import UdpFabric

__all__ = ["AsyncioScheduler", "UdpFabric"]
