"""Real-time runtime: the protocol stack over asyncio + real UDP sockets.

The session service is driver-agnostic: it consumes a scheduler (``now`` /
``call_later`` / ``rng``) and a datagram fabric (``bind`` / ``send`` /
``topology`` / ``stats``).  :class:`AsyncioScheduler` and
:class:`UdpFabric` provide real-time implementations so the identical
protocol code that runs deterministically in the simulator also runs on
localhost UDP — see ``examples/asyncio_udp_demo.py``.

On top of that sits **raintap**, the live telemetry plane
(docs/TELEMETRY.md): :mod:`repro.runtime.telemetry` ships each worker's
probe events over a versioned JSON sidecar channel,
:mod:`repro.runtime.collector` merges the per-worker streams into one
watermarked feed and runs the wall-clock contract monitor, rollups,
``/metrics`` exposition, capture files, and breach postmortems over it.
"""

from repro.runtime.collector import LiveCluster, LiveRunResult, TelemetryCollector
from repro.runtime.scheduler import AsyncioScheduler
from repro.runtime.telemetry import TelemetryShipper, WallClock
from repro.runtime.udp import UdpFabric

__all__ = [
    "AsyncioScheduler",
    "LiveCluster",
    "LiveRunResult",
    "TelemetryCollector",
    "TelemetryShipper",
    "UdpFabric",
    "WallClock",
]
