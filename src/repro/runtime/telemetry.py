"""raintap worker side: probe shipping over a sidecar telemetry channel.

Every simulator-era observability consumer (aggregator, contract monitor,
flight recorder, diff) reads one thing: a time-ordered stream of
:class:`~repro.obs.probe.ProbeEvent`.  On a multi-process real-UDP cluster
those events are born in N different processes with N different monotonic
clocks; this module is the bridge.  Each worker attaches its
:class:`~repro.obs.probe.ProbeBus` to a :class:`TelemetryShipper`, which

* restamps every event from the worker's monotonic scheduler clock onto
  the shared epoch wall clock (one fixed offset, measured at start-up, so
  intra-worker ordering and inter-event gaps are preserved exactly);
* wraps it in a versioned, length-prefixed **JSON** frame — never pickle:
  the telemetry port is a listening socket and frames from it must be
  safe to parse no matter who sent them — and ships it over a dedicated
  UDP sidecar socket to the in-process collector
  (:mod:`repro.runtime.collector`);
* heartbeats a ``mark`` frame when the node is idle, so the collector's
  per-source watermark advances and merged events never wait on a quiet
  worker;
* keeps the node's :class:`~repro.obs.recorder.FlightRecorder` ring and
  answers the collector's ``pull`` request with a chunked dump of it —
  the raw material of a breach-time postmortem bundle.

Wire format of one frame (docs/TELEMETRY.md)::

    b"RTAP" | version (u8) | body length (u32, big-endian) | JSON body

The body is a JSON object with a ``t`` tag: ``hello``, ``probe``,
``mark``, ``pull``, ``ring``, ``ring_end``, ``bye``.  Frames above
:data:`MAX_FRAME_BYTES` or failing any prefix/length/JSON check raise
:class:`FrameError` on decode; the collector counts them as
``telemetry.drop`` and moves on.

This module runs on the wall-clock side of the determinism fence (like
:mod:`repro.obs.prof`): it reads ``time.time`` to compute the epoch
offset.  It never feeds the *simulated* probe stream — only the collector
feed, which is wall-clock by definition.
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
from typing import Any, Callable

from repro.obs.probe import ProbeEvent, event_record

__all__ = [
    "TELEMETRY_MAGIC",
    "TELEMETRY_VERSION",
    "TELEMETRY_SCHEMA",
    "MAX_FRAME_BYTES",
    "CAPTURE_SCHEMA",
    "FrameError",
    "encode_frame",
    "decode_frame",
    "WallClock",
    "TelemetryShipper",
]

#: Frame prefix: 4 magic bytes, then a version byte, then a u32 length.
TELEMETRY_MAGIC = b"RTAP"
TELEMETRY_VERSION = 1
_HEADER = struct.Struct(">4sBI")

#: Schema number carried in ``hello`` frames; collectors refuse sources
#: speaking a different probe-record schema.
TELEMETRY_SCHEMA = 1

#: Cap on one encoded telemetry frame (header included) — under the
#: 65507-byte UDP payload limit with headroom for the sidecar's own use.
MAX_FRAME_BYTES = 60_000

#: Header schema of collector capture files: a JSONL file whose first
#: line is ``{"schema": "repro.obs.capture/1", ...}`` and whose remaining
#: lines are ``event_record`` objects with epoch-wall-clock ``at``.
CAPTURE_SCHEMA = "repro.obs.capture/1"

#: Ring-dump chunking: events per ``ring`` frame.  Probe records are a
#: few hundred bytes, so this stays far under MAX_FRAME_BYTES.
_RING_CHUNK = 24


class FrameError(ValueError):
    """A telemetry frame failed a prefix, length, or JSON check.

    ``where`` is the machine-readable drop label the collector reports
    (``oversized``, ``bad-magic``, ``bad-version``, ``garbage``).
    """

    def __init__(self, where: str, detail: str) -> None:
        super().__init__(f"{where}: {detail}")
        self.where = where


def encode_frame(body: dict[str, Any]) -> bytes:
    """Encode one frame body; raises :class:`FrameError` when oversized."""
    payload = json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    data = _HEADER.pack(TELEMETRY_MAGIC, TELEMETRY_VERSION, len(payload)) + payload
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError("oversized", f"{len(data)} B > {MAX_FRAME_BYTES} B")
    return data


def decode_frame(data: bytes) -> dict[str, Any]:
    """Decode one frame; raises :class:`FrameError` on anything malformed."""
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError("oversized", f"{len(data)} B > {MAX_FRAME_BYTES} B")
    if len(data) < _HEADER.size or not data.startswith(TELEMETRY_MAGIC):
        raise FrameError("bad-magic", "missing RTAP prefix")
    magic, version, length = _HEADER.unpack_from(data)
    if version != TELEMETRY_VERSION:
        raise FrameError("bad-version", f"version {version}")
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise FrameError("garbage", f"length says {length} B, got {len(payload)} B")
    try:
        body = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError("garbage", f"body is not JSON ({exc})") from exc
    if not isinstance(body, dict) or not isinstance(body.get("t"), str):
        raise FrameError("garbage", "body is not a tagged object")
    return body


class WallClock:
    """Epoch wall clock with ``now``/``call_later`` — the monitor's clock.

    ``now`` is ``asyncio`` loop time shifted onto the Unix epoch by one
    offset measured at construction, so it is (a) monotone within the
    process — timers never run backwards — and (b) directly comparable to
    the restamped event timestamps every worker ships, which use the same
    epoch.  ``call_later`` delegates to the asyncio loop, which is how a
    :class:`~repro.obs.monitor.ContractMonitor` handed this clock ticks
    in real time.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._offset = time.time() - self._loop.time()

    @property
    def now(self) -> float:
        return self._loop.time() + self._offset

    def call_later(
        self, delay: float, callback: Callable[..., None], *args: Any,
        priority: int = 0,
    ):
        """Schedule ``callback(*args)``; ``priority`` accepted and ignored
        (wall time does not produce exact ties)."""
        return self._loop.call_later(delay, callback, *args)


class TelemetryShipper:
    """Ships one worker's probe events to the collector, frame by frame.

    Parameters
    ----------
    source:
        This worker's node id — the collector's per-source stream key.
    send:
        ``send(data: bytes) -> None`` over the sidecar channel.  Injected
        so the same shipper runs over a connected UDP socket (the worker),
        or a no-op sink (the ``telemetry_overhead_ratio`` benchmark).
    clock_offset:
        ``epoch_now - scheduler_now`` measured at worker start-up; added
        to every event's ``at`` so all shipped timestamps live on the
        shared epoch timeline.
    recorder:
        Optional :class:`~repro.obs.recorder.FlightRecorder` whose ring
        answers the collector's ``pull`` (breach postmortem).

    Subscribe with ``bus.subscribe(shipper.on_probe)`` — the shipper is a
    plain bus listener, so attaching it costs the same one-call fan-out
    as any other subscriber.
    """

    def __init__(
        self,
        source: str,
        send: Callable[[bytes], None],
        *,
        clock_offset: float = 0.0,
        recorder=None,
    ) -> None:
        self.source = source
        self.send = send
        self.clock_offset = clock_offset
        self.recorder = recorder
        self.shipped = 0
        self.oversized = 0
        self._seq = 0

    # ------------------------------------------------------------------
    # outbound frames
    # ------------------------------------------------------------------
    def hello(self, addr: str) -> None:
        """Announce this source (first frame on the channel)."""
        self.send(
            encode_frame(
                {
                    "t": "hello",
                    "src": self.source,
                    "addr": addr,
                    "schema": TELEMETRY_SCHEMA,
                }
            )
        )

    def _restamped(self, event: ProbeEvent) -> dict[str, Any]:
        record = event_record(event)
        record["at"] = event.at + self.clock_offset
        return record

    def on_probe(self, event: ProbeEvent) -> None:
        """Bus listener: frame and ship one probe event.

        An event whose encoded frame would exceed the cap is counted in
        ``oversized`` and *not* shipped — its sequence number is consumed,
        so the collector sees an honest ``telemetry.gap`` instead of a
        silently complete stream.
        """
        self._seq += 1
        try:
            data = encode_frame(
                {
                    "t": "probe",
                    "src": self.source,
                    "seq": self._seq,
                    "ev": self._restamped(event),
                }
            )
        except FrameError:
            self.oversized += 1
            return
        self.shipped += 1
        self.send(data)

    def mark(self) -> None:
        """Heartbeat: advance the collector's watermark while idle."""
        self.send(
            encode_frame(
                {
                    "t": "mark",
                    "src": self.source,
                    "seq": self._seq,
                    "shipped": self.shipped,
                    "now": time.time(),
                }
            )
        )

    def bye(self) -> None:
        """Close the stream cleanly (silence after this is not an alert)."""
        self.send(
            encode_frame(
                {"t": "bye", "src": self.source, "shipped": self.shipped}
            )
        )

    # ------------------------------------------------------------------
    # inbound frames (the collector talks back)
    # ------------------------------------------------------------------
    def dump_ring(self) -> None:
        """Ship the flight-recorder ring as chunked ``ring`` frames."""
        events = self.recorder.snapshot() if self.recorder is not None else []
        records = [self._restamped(e) for e in events]
        parts = 0
        for i in range(0, len(records), _RING_CHUNK):
            chunk = records[i : i + _RING_CHUNK]
            try:
                data = encode_frame(
                    {
                        "t": "ring",
                        "src": self.source,
                        "part": parts,
                        "events": chunk,
                    }
                )
            except FrameError:
                continue  # drop an unshippable chunk, keep the rest
            parts += 1
            self.send(data)
        self.send(
            encode_frame(
                {
                    "t": "ring_end",
                    "src": self.source,
                    "parts": parts,
                    "count": len(records),
                }
            )
        )

    def on_datagram(self, data: bytes) -> None:
        """Handle one frame from the collector (currently only ``pull``)."""
        try:
            body = decode_frame(data)
        except FrameError:
            return  # not ours to report; the collector audits its own side
        if body.get("t") == "pull":
            self.dump_ring()
