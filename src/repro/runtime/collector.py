"""raintap collector: merge per-worker probe streams into one live feed.

The counterpart of :mod:`repro.runtime.telemetry`: one in-process UDP
endpoint that every worker's :class:`~repro.runtime.telemetry.TelemetryShipper`
ships frames to.  The collector turns N per-process streams into the one
canonical, time-ordered feed the simulator-era consumers expect:

* **Per-source watermarking with bounded reordering.**  Every frame from a
  source advances that source's watermark (probe timestamps and heartbeat
  ``mark`` frames alike).  An event is *released* only once every live
  source's watermark has passed it by the reorder allowance, so the merged
  feed is time-ordered even though UDP delivers per-source streams with
  arbitrary relative skew.  A source that goes quiet past the silence
  timeout is excluded from the watermark (and reported as
  ``telemetry.silent``) so a dead worker cannot stall the plane.
* **The existing consumers, unchanged.**  Released events flow into a
  :class:`~repro.obs.agg.StreamAggregator` rollup and a
  :class:`~repro.obs.monitor.ContractMonitor` running on the injectable
  wall clock (:class:`~repro.runtime.telemetry.WallClock`) — the paper's
  rules evaluated live against a real cluster.
* **Prometheus-style ``/metrics``** text exposition
  (:meth:`TelemetryCollector.metrics_text`, optionally served over HTTP
  by :meth:`TelemetryCollector.serve_metrics`).
* **Capture files**: one JSONL file, a ``repro.obs.capture/1`` header
  line followed by released event records — readable by ``repro obs
  diff`` / ``repro obs timeline`` like any probe export.
* **Breach postmortems**: on the first fired alert the collector sends
  every worker a ``pull``, gathers their flight-recorder rings, and cuts
  a standard ``repro.obs.bundle/2`` with the alerts attached.

:class:`LiveCluster` at the bottom is the driver used by ``repro soak
--procs N`` and ``repro top``: spawn N worker processes, attach the
collector, watch, gate.
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.obs.monitor import ContractMonitor, realtime_contract_rules
from repro.obs.agg import StreamAggregator
from repro.obs.probe import PROBE_CATALOG, ProbeEvent, event_from_record
from repro.obs.recorder import build_bundle, dump_bundle
from repro.runtime.telemetry import (
    CAPTURE_SCHEMA,
    TELEMETRY_SCHEMA,
    FrameError,
    WallClock,
    decode_frame,
    encode_frame,
)

__all__ = [
    "TelemetryCollector",
    "LiveCluster",
    "LiveRunResult",
    "free_udp_ports",
]

#: Collector-origin events carry this pseudo node id in the merged feed.
COLLECTOR_NODE = "collector"


def free_udp_ports(n: int) -> list[int]:
    """Reserve ``n`` distinct free localhost UDP ports (bind-probe)."""
    socks = [socket.socket(socket.AF_INET, socket.SOCK_DGRAM) for _ in range(n)]
    try:
        for s in socks:
            s.bind(("127.0.0.1", 0))
        return [s.getsockname()[1] for s in socks]
    finally:
        for s in socks:
            s.close()


class _Source:
    """Collector-side state of one worker's stream."""

    __slots__ = (
        "node", "addr", "peer", "last_seq", "watermark", "last_heard",
        "pending", "received", "silent", "closed",
    )

    def __init__(self, node: str, peer: Any, at: float) -> None:
        self.node = node
        self.addr = "?"
        self.peer = peer  #: UDP (host, port) to talk back to (ring pulls)
        self.last_seq = 0
        self.watermark = float("-inf")
        self.last_heard = at
        self.pending: list[tuple[float, str, int, dict]] = []
        self.received = 0
        self.silent = False
        self.closed = False


class _CollectorEndpoint(asyncio.DatagramProtocol):
    def __init__(self, collector: "TelemetryCollector") -> None:
        self.collector = collector
        self.transport: asyncio.DatagramTransport | None = None

    def connection_made(self, transport) -> None:  # pragma: no cover - trivial
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.collector.on_datagram(data, addr)


class TelemetryCollector:
    """Merge worker telemetry streams; run rollups + contract rules live.

    Parameters
    ----------
    rules:
        Contract rule set evaluated over the merged feed (typically
        :func:`~repro.obs.monitor.realtime_contract_rules`); empty list =
        rollups and captures only.
    clock:
        Injectable time source (``now``/``call_later``); defaults to a
        fresh :class:`~repro.runtime.telemetry.WallClock`.
    reorder:
        Reordering allowance in seconds: events are held until every live
        source's watermark is this far past them.
    silence:
        Seconds without any frame after which a source is declared
        ``telemetry.silent`` and excluded from the watermark.
    capture_path:
        Write released events here as a capture file (JSONL with a
        ``repro.obs.capture/1`` header line).
    postmortem_path:
        Where the breach postmortem bundle is written (default
        ``raintap-postmortem.bundle.json`` in the working directory).
    """

    def __init__(
        self,
        rules: list | None = None,
        *,
        clock: WallClock | None = None,
        reorder: float = 0.05,
        silence: float = 1.0,
        flush_interval: float = 0.25,
        ring_wait: float = 1.5,
        capture_path: str | Path | None = None,
        postmortem_path: str | Path | None = None,
    ) -> None:
        self.clock = clock if clock is not None else WallClock()
        self.reorder = reorder
        self.silence = silence
        self.flush_interval = flush_interval
        self.ring_wait = ring_wait
        self.monitor = ContractMonitor(None, rules or [], clock=self.clock)
        self.agg = StreamAggregator()
        #: Extra consumers of the released feed (``fn(event)``).
        self.listeners: list[Callable[[ProbeEvent], None]] = []
        self.sources: dict[str, _Source] = {}
        self.events_released = 0
        self.frames_received = 0
        self.frames_dropped: dict[str, int] = {}
        self.gaps = 0
        self.events_lost = 0
        #: Live per-node view for ``repro top``: state / view / accepts.
        self.states: dict[str, str] = {}
        self.views: dict[str, tuple[Any, int]] = {}
        self.accepts: dict[str, int] = {}
        self.port: int | None = None
        self.metrics_port: int | None = None
        self.postmortem: dict | None = None
        self.postmortem_path = Path(
            postmortem_path
            if postmortem_path is not None
            else "raintap-postmortem.bundle.json"
        )
        self.postmortem_written: Path | None = None
        self._capture_path = Path(capture_path) if capture_path else None
        self._capture = None
        self._local_pending: list[tuple[float, str, int, dict]] = []
        self._local_seq = 0
        self._rings: dict[str, dict[int, list[dict]]] = {}
        self._rings_done: set[str] = set()
        self._pull_sent = False
        self._pull_due: float | None = None
        self._transport: asyncio.DatagramTransport | None = None
        self._http: asyncio.AbstractServer | None = None
        self._timer = None
        self._running = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def open(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind the telemetry endpoint; returns the bound port."""
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _CollectorEndpoint(self), local_addr=(host, port)
        )
        self._transport = transport
        self.port = transport.get_extra_info("sockname")[1]
        if self._capture_path is not None:
            self._capture_path.parent.mkdir(parents=True, exist_ok=True)
            self._capture = open(self._capture_path, "w", encoding="utf-8")
            header = {
                "schema": CAPTURE_SCHEMA,
                "t0": self.clock.now,
                "reorder": self.reorder,
                "silence": self.silence,
            }
            self._capture.write(
                json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n"
            )
            self._capture.flush()
        return self.port

    async def serve_metrics(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Serve :meth:`metrics_text` over minimal HTTP; returns the port."""

        async def handle(reader, writer) -> None:
            try:
                await reader.readline()  # request line; path is irrelevant
                while True:
                    line = await reader.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                body = self.metrics_text().encode()
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    + f"Content-Length: {len(body)}\r\n".encode()
                    + b"Connection: close\r\n\r\n"
                    + body
                )
                await writer.drain()
            finally:
                writer.close()

        self._http = await asyncio.start_server(handle, host, port)
        self.metrics_port = self._http.sockets[0].getsockname()[1]
        return self.metrics_port

    def start(self) -> None:
        """Begin periodic watermark flushes on the clock (idempotent)."""
        if self._running:
            return
        self._running = True
        self._timer = self.clock.call_later(self.flush_interval, self._tick)

    def close(self) -> None:
        """Stop flushing and release the socket/capture/HTTP resources."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        if self._http is not None:
            self._http.close()
            self._http = None
        if self._capture is not None:
            self._capture.close()
            self._capture = None

    def _tick(self) -> None:
        if not self._running:
            return
        self.flush()
        self._timer = self.clock.call_later(self.flush_interval, self._tick)

    # ------------------------------------------------------------------
    # frame ingestion
    # ------------------------------------------------------------------
    def _emit(self, kind: str, *args: Any) -> None:
        """Queue one collector-origin ``telemetry.*`` event into the feed."""
        assert len(args) == len(PROBE_CATALOG[kind])
        self._local_seq += 1
        at = self.clock.now
        record = {
            "n": 0,  # assigned at release
            "at": at,
            "node": COLLECTOR_NODE,
            "kind": kind,
            "args": list(args),
        }
        self._local_pending.append((at, COLLECTOR_NODE, self._local_seq, record))

    def _drop(self, where: str, size: int) -> None:
        self.frames_dropped[where] = self.frames_dropped.get(where, 0) + 1
        self._emit("telemetry.drop", where, size)

    def _source(self, node: str, peer: Any) -> _Source:
        src = self.sources.get(node)
        if src is None:
            src = self.sources[node] = _Source(node, peer, self.clock.now)
        else:
            src.peer = peer
        return src

    def on_datagram(self, data: bytes, peer: Any) -> None:
        """Decode and dispatch one frame from a worker."""
        self.frames_received += 1
        try:
            body = decode_frame(data)
        except FrameError as exc:
            self._drop(exc.where, len(data))
            return
        tag = body.get("t")
        node = body.get("src")
        if not isinstance(node, str) or not node:
            self._drop("garbage", len(data))
            return
        src = self._source(node, peer)
        src.last_heard = self.clock.now
        src.silent = False
        if tag == "hello":
            if body.get("schema") != TELEMETRY_SCHEMA:
                self._drop("bad-version", len(data))
                return
            src.addr = str(body.get("addr", "?"))
            src.closed = False
            self._emit("telemetry.hello", node, src.addr, TELEMETRY_SCHEMA)
        elif tag == "probe":
            seq, ev = body.get("seq"), body.get("ev")
            if not isinstance(seq, int) or not isinstance(ev, dict):
                self._drop("garbage", len(data))
                return
            missing = [k for k in ("n", "at", "node", "kind", "args") if k not in ev]
            if missing or ev["kind"] not in PROBE_CATALOG:
                self._drop("garbage", len(data))
                return
            if seq <= src.last_seq:
                return  # duplicate or late twin of a released frame
            expected = src.last_seq + 1
            if seq > expected:
                lost = seq - expected
                self.gaps += 1
                self.events_lost += lost
                self._emit("telemetry.gap", node, expected, seq, lost)
            src.last_seq = seq
            src.received += 1
            at = float(ev["at"])
            src.watermark = max(src.watermark, at)
            src.pending.append((at, str(ev["node"]), seq, ev))
        elif tag == "mark":
            now = body.get("now")
            if isinstance(now, (int, float)):
                src.watermark = max(src.watermark, float(now))
        elif tag == "ring":
            events = body.get("events")
            part = body.get("part")
            if isinstance(events, list) and isinstance(part, int):
                self._rings.setdefault(node, {})[part] = [
                    e for e in events if isinstance(e, dict)
                ]
        elif tag == "ring_end":
            self._rings.setdefault(node, {})
            self._rings_done.add(node)
        elif tag == "bye":
            src.closed = True
            self._emit("telemetry.bye", node, int(body.get("shipped", 0)))
        else:
            self._drop("garbage", len(data))

    # ------------------------------------------------------------------
    # watermark merge
    # ------------------------------------------------------------------
    def _safe_horizon(self, now: float) -> float:
        """Latest timestamp that is safe to release (watermark merge)."""
        marks = [
            s.watermark
            for s in self.sources.values()
            if not s.closed and not s.silent
        ]
        horizon = min(marks) if marks else now
        return min(horizon, now) - self.reorder

    def _check_silence(self, now: float) -> None:
        for s in self.sources.values():
            if s.closed or s.silent:
                continue
            quiet = now - s.last_heard
            if quiet > self.silence:
                s.silent = True
                self._emit("telemetry.silent", s.node, round(quiet, 3))

    def flush(self, *, force: bool = False) -> int:
        """Release every event at or below the safe horizon, in time order.

        ``force=True`` (shutdown) releases everything still pending.
        Returns the number of events released by this pass; the contract
        monitor is evaluated once at the end of every pass.
        """
        now = self.clock.now
        self._check_silence(now)
        safe = float("inf") if force else self._safe_horizon(now)
        batch: list[tuple[float, str, int, dict]] = []
        for pending in [s.pending for s in self.sources.values()] + [
            self._local_pending
        ]:
            keep = []
            for item in pending:
                (batch if item[0] <= safe else keep).append(item)
            pending[:] = keep
        batch.sort(key=lambda item: (item[0], item[1], item[2]))
        for _, _, _, record in batch:
            self.events_released += 1
            record["n"] = self.events_released
            event = event_from_record(record)
            self.agg.observe(event)
            self.monitor.ingest(event)
            self._track(event)
            if self._capture is not None:
                self._capture.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
            for listener in self.listeners:
                listener(event)
        if batch and self._capture is not None:
            self._capture.flush()
        fired = self.monitor.evaluate(now)
        self._postmortem_step(fired, now, force=force)
        return len(batch)

    def _track(self, event: ProbeEvent) -> None:
        kind = event.kind
        if kind == "node.state":
            self.states[event.node] = str(event.args[1])
        elif kind == "view.change":
            self.views[event.node] = (event.args[0], len(event.args[1]))
        elif kind == "token.accept":
            self.accepts[event.node] = self.accepts.get(event.node, 0) + 1

    def node_status(self) -> dict[str, dict[str, Any]]:
        """Per-node live status for the ``repro top`` view."""
        nodes = sorted(set(self.states) | set(self.views) | set(self.accepts))
        return {
            node: {
                "state": self.states.get(node, "?"),
                "view": self.views.get(node, ("-", 0))[0],
                "members": self.views.get(node, ("-", 0))[1],
                "accepts": self.accepts.get(node, 0),
            }
            for node in nodes
            if node != COLLECTOR_NODE
        }

    # ------------------------------------------------------------------
    # breach postmortem
    # ------------------------------------------------------------------
    def request_rings(self) -> None:
        """Ask every registered worker for its flight-recorder ring."""
        if self._transport is None:
            return
        pull = encode_frame({"t": "pull"})
        for s in self.sources.values():
            if s.peer is not None and not s.closed:
                self._transport.sendto(pull, s.peer)

    def _postmortem_step(
        self, fired: list, now: float, *, force: bool = False
    ) -> None:
        if self.postmortem is not None:
            return
        if fired and not self._pull_sent:
            self._pull_sent = True
            self._pull_due = now + self.ring_wait
            self.request_rings()
        if not self._pull_sent:
            return
        expected = {
            s.node
            for s in self.sources.values()
            if not s.closed and not s.silent
        }
        complete = expected <= self._rings_done
        if force or complete or (self._pull_due is not None and now >= self._pull_due):
            self._build_postmortem(now)

    def _build_postmortem(self, now: float) -> None:
        records: list[dict] = []
        for node in sorted(self._rings):
            for part in sorted(self._rings[node]):
                records.extend(self._rings[node][part])
        records.sort(key=lambda r: (r.get("at", 0.0), str(r.get("node", ""))))
        events = []
        for i, record in enumerate(records):
            try:
                events.append(event_from_record({**record, "n": i + 1}))
            except (KeyError, TypeError):
                continue
        first = self.monitor.alerts[0] if self.monitor.alerts else None
        bundle = build_bundle(
            f"contract:{first.rule}" if first else "contract:unknown",
            detail=first.detail if first else "",
            at=first.at if first else now,
            events=events,
            context={
                "plane": "raintap",
                "sources": {
                    s.node: {
                        "addr": s.addr,
                        "received": s.received,
                        "silent": s.silent,
                        "closed": s.closed,
                    }
                    for s in self.sources.values()
                },
                "events_released": self.events_released,
                "gaps": self.gaps,
            },
            metrics=self.agg.to_dict(),
            alerts=self.monitor.alert_records(),
        )
        self.postmortem = bundle
        self.postmortem_written = dump_bundle(bundle, self.postmortem_path)

    # ------------------------------------------------------------------
    # /metrics exposition
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """Prometheus text exposition of the plane's state (never empty)."""
        lines = [
            "# HELP raintap_events_released_total probe events released into the merged feed",
            "# TYPE raintap_events_released_total counter",
            f"raintap_events_released_total {self.events_released}",
            "# HELP raintap_frames_received_total telemetry frames received on the sidecar port",
            "# TYPE raintap_frames_received_total counter",
            f"raintap_frames_received_total {self.frames_received}",
            "# HELP raintap_sources registered probe sources",
            "# TYPE raintap_sources gauge",
            f"raintap_sources {len(self.sources)}",
            "# HELP raintap_gaps_total sequence gaps observed across sources",
            "# TYPE raintap_gaps_total counter",
            f"raintap_gaps_total {self.gaps}",
            "# HELP raintap_events_lost_total probe events lost in shipping (gap sizes)",
            "# TYPE raintap_events_lost_total counter",
            f"raintap_events_lost_total {self.events_lost}",
        ]
        lines += [
            "# HELP raintap_frames_dropped_total frames discarded before the feed",
            "# TYPE raintap_frames_dropped_total counter",
        ]
        for where in sorted(self.frames_dropped):
            lines.append(
                f'raintap_frames_dropped_total{{where="{where}"}} '
                f"{self.frames_dropped[where]}"
            )
        lines += [
            "# HELP raintap_alerts_total contract alerts fired",
            "# TYPE raintap_alerts_total counter",
        ]
        by_severity: dict[str, int] = {}
        for alert in self.monitor.alerts:
            by_severity[alert.severity] = by_severity.get(alert.severity, 0) + 1
        for severity in ("warning", "critical"):
            lines.append(
                f'raintap_alerts_total{{severity="{severity}"}} '
                f"{by_severity.get(severity, 0)}"
            )
        rollup = self.agg.to_dict()
        per_node = rollup["per_node"]
        for metric, key, help_text in (
            ("raintap_node_events_total", "events", "probe events per node"),
            ("raintap_node_token_accepts_total", "token_accepts", "token visits per node"),
            ("raintap_node_bytes_sent_total", "bytes_sent", "datagram bytes sent per node"),
            ("raintap_node_packets_dropped_total", "packets_dropped", "datagrams dropped per node"),
        ):
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} counter")
            for node in sorted(per_node):
                if node == COLLECTOR_NODE:
                    continue
                lines.append(f'{metric}{{node="{node}"}} {per_node[node][key]}')
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the multi-process driver (repro soak --procs N, repro top)
# ----------------------------------------------------------------------
@dataclass
class LiveRunResult:
    """Outcome of one :class:`LiveCluster` run."""

    formed: bool
    formed_at: float | None
    alerts: list
    events_released: int
    metrics_text: str
    capture_path: Path | None
    postmortem_path: Path | None
    worker_rcs: dict[str, int]
    killed: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """The soak gate: formed, zero alerts, live metrics, clean exits."""
        return (
            self.formed
            and not self.alerts
            and bool(self.metrics_text.strip())
            and all(rc == 0 for nid, rc in self.worker_rcs.items()
                    if nid not in self.killed)
        )


class LiveCluster:
    """Spawn N real worker processes and watch them through the collector.

    Builds the ring the same way ``examples/multiprocess_demo.py`` does —
    the first node bootstraps, the rest join via it — but with every
    worker shipping probes to an in-process :class:`TelemetryCollector`
    evaluating :func:`~repro.obs.monitor.realtime_contract_rules` live.
    ``kill_at`` maps node id → wall seconds after start at which that
    worker is SIGKILLed (the telemetry plane must notice and cut a
    postmortem; nobody tells it).
    """

    def __init__(
        self,
        procs: int,
        *,
        seconds: float = 5.0,
        hop_interval: float = 0.02,
        kill_at: dict[str, float] | None = None,
        capture_path: str | Path | None = None,
        postmortem_path: str | Path | None = None,
        metrics_port: int | None = None,
        silence: float = 1.0,
        report_every: float = 1.0,
        on_line: Callable[[str], None] | None = None,
    ) -> None:
        if procs < 2:
            raise ValueError("need at least 2 worker processes for a ring")
        self.ids = [f"n{i:02d}" for i in range(procs)]
        self.seconds = seconds
        self.hop_interval = hop_interval
        self.kill_at = dict(kill_at or {})
        unknown = sorted(set(self.kill_at) - set(self.ids))
        if unknown:
            raise ValueError(f"kill targets not in the cluster: {unknown}")
        self.capture_path = capture_path
        self.postmortem_path = postmortem_path
        self.metrics_port = metrics_port
        self.silence = silence
        self.report_every = report_every
        self.on_line = on_line
        self.collector: TelemetryCollector | None = None
        self.formed_at: float | None = None
        self._accept_snapshot: dict[str, int] = {}
        self._last_report: float | None = None

    def _line(self, text: str) -> None:
        if self.on_line is not None:
            self.on_line(text)

    def status_line(self, t: float) -> str:
        """One redraw-free ``repro top`` line: per-node state, view, rate."""
        assert self.collector is not None
        status = self.collector.node_status()
        dt = t - self._last_report if self._last_report is not None else None
        cells = []
        for node in self.ids:
            s = status.get(node)
            if s is None:
                cells.append(f"{node}:—")
                continue
            accepts = s["accepts"]
            if dt and dt > 0:
                rate = (accepts - self._accept_snapshot.get(node, 0)) / dt
                rate_str = f"{rate:5.1f} tok/s"
            else:
                rate_str = f"{accepts:>4} tok"
            self._accept_snapshot[node] = accepts
            cells.append(f"{node}:{s['state']:<8} v{s['view']} {rate_str}")
        self._last_report = t
        alerts = len(self.collector.monitor.alerts)
        flag = "ALERT" if alerts else "ok   "
        return f"t={t:7.2f}s  {flag}  " + "  ".join(cells) + f"  alerts={alerts}"

    def _worker_cmd(self, nid: str, ports: dict[str, int]) -> list[str]:
        assert self.collector is not None and self.collector.port is not None
        peers = ",".join(f"{n}={p}" for n, p in ports.items())
        cmd = [
            sys.executable, "-m", "repro.runtime.worker",
            "--node", nid, "--port", str(ports[nid]),
            "--peers", peers,
            "--duration", str(self.seconds),
            "--hop-interval", str(self.hop_interval),
            "--telemetry", f"127.0.0.1:{self.collector.port}",
        ]
        if nid == self.ids[0]:
            cmd.append("--bootstrap")
        else:
            cmd += ["--contact", self.ids[0]]
        return cmd

    async def run(self) -> LiveRunResult:
        loop = asyncio.get_running_loop()
        clock = WallClock(loop)
        from repro.core.config import RaincoreConfig

        config = RaincoreConfig.tuned(
            ring_size=len(self.ids), hop_interval=self.hop_interval
        )
        rules = realtime_contract_rules(
            config, len(self.ids), silence_timeout=self.silence
        )
        collector = TelemetryCollector(
            rules,
            clock=clock,
            silence=self.silence,
            capture_path=self.capture_path,
            postmortem_path=self.postmortem_path,
        )
        self.collector = collector
        await collector.open()
        if self.metrics_port is not None:
            port = await collector.serve_metrics(port=self.metrics_port)
            self._line(f"metrics: http://127.0.0.1:{port}/metrics")
        collector.start()

        expected = set(self.ids)

        def watch_formation(event: ProbeEvent) -> None:
            if (
                self.formed_at is None
                and event.kind == "view.change"
                and set(event.args[1]) == expected
            ):
                self.formed_at = event.at

        collector.listeners.append(watch_formation)

        ports = dict(zip(self.ids, free_udp_ports(len(self.ids))))
        start = clock.now
        procs: dict[str, asyncio.subprocess.Process] = {}
        try:
            procs[self.ids[0]] = await asyncio.create_subprocess_exec(
                *self._worker_cmd(self.ids[0], ports),
                stdout=asyncio.subprocess.PIPE,
                stderr=asyncio.subprocess.PIPE,
            )
            await asyncio.sleep(0.25)  # let the bootstrap node bind + mint
            for nid in self.ids[1:]:
                procs[nid] = await asyncio.create_subprocess_exec(
                    *self._worker_cmd(nid, ports),
                    stdout=asyncio.subprocess.PIPE,
                    stderr=asyncio.subprocess.PIPE,
                )

            killed: list[str] = []
            pending_kills = dict(self.kill_at)
            next_report = self.report_every
            deadline = self.seconds + max(10.0, self.seconds)
            while any(p.returncode is None for p in procs.values()):
                await asyncio.sleep(0.1)
                t = clock.now - start
                for nid, at in list(pending_kills.items()):
                    if t >= at and procs[nid].returncode is None:
                        procs[nid].kill()
                        killed.append(nid)
                        del pending_kills[nid]
                        self._line(f"t={t:7.2f}s  KILL   {nid} (SIGKILL injected)")
                if t >= next_report:
                    next_report += self.report_every
                    self._report_alerts()
                    self._line(self.status_line(t))
                if t > deadline:  # hang guard: a wedged worker fails the run
                    for p in procs.values():
                        if p.returncode is None:
                            p.kill()
            outs = {
                nid: await p.communicate() for nid, p in procs.items()
            }
        finally:
            # drain in-flight frames, then force-release and finalize
            await asyncio.sleep(max(0.3, 3 * collector.reorder))
            collector.flush(force=True)
            self._report_alerts()
            metrics = collector.metrics_text()
            collector.close()

        rcs = {nid: procs[nid].returncode or 0 for nid in procs}
        for nid, (_, err) in outs.items():
            if rcs[nid] != 0 and nid not in killed and err:
                self._line(f"{nid} stderr: {err.decode(errors='replace').strip()}")
        return LiveRunResult(
            formed=self.formed_at is not None,
            formed_at=self.formed_at,
            alerts=list(collector.monitor.alerts),
            events_released=collector.events_released,
            metrics_text=metrics,
            capture_path=Path(self.capture_path) if self.capture_path else None,
            postmortem_path=collector.postmortem_written,
            worker_rcs=rcs,
            killed=killed,
        )

    _alerts_seen = 0

    def _report_alerts(self) -> None:
        assert self.collector is not None
        fresh = self.collector.monitor.alerts[self._alerts_seen:]
        self._alerts_seen = len(self.collector.monitor.alerts)
        for alert in fresh:
            self._line("ALERT " + alert.describe())
