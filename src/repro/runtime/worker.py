"""Standalone node worker: one Raincore node per OS process.

This is the final step of the runtime ladder — simulator → asyncio/UDP in
one process → **separate processes** with nothing shared but datagrams.
Each worker runs exactly one session node over real UDP and reports its
observations as JSON lines on stdout, so a parent (test, demo, or human
with a terminal per node) can watch the cluster form across process
boundaries.  With ``--telemetry HOST:PORT`` the worker also attaches a
probe bus and ships every probe event to a raintap collector
(:mod:`repro.runtime.collector`) over the sidecar channel, keeping a
flight-recorder ring to answer breach-time ``pull`` requests.

Usage (normally spawned by ``repro soak --procs N``, ``repro top``,
``examples/multiprocess_demo.py`` or the tests)::

    python -m repro.runtime.worker --node A --port 42000 \
        --peers A=42000,B=42001,C=42002 --bootstrap --duration 3 \
        --multicast-at 1.0 --payload hello \
        --telemetry 127.0.0.1:41999

Stdout protocol (schema version 2)
----------------------------------
One JSON object per line.  Every line carries the envelope fields

``v``
    stdout schema version, the integer ``2``.  Consumers must check it:
    version 1 lines (no ``v`` key) predate wall-clock timestamps.
``ts``
    Unix epoch wall-clock seconds (float) at emission — comparable
    across processes and with collector capture files.
``event``
    One of ``started``, ``view``, ``deliver``, ``done``.
``node``
    This worker's node id.

Event-specific fields:

``started``
    ``port`` (bound UDP port), ``telemetry`` (collector ``HOST:PORT``
    or ``null``).
``view``
    ``view_id``, ``members`` (sorted list of node ids).
``deliver``
    ``origin``, ``msg_no``, ``payload`` (UTF-8 decoded, replacement on
    undecodable bytes).
``done``
    ``members``, ``state``, ``packets_sent``, ``shipped`` (probe events
    shipped to the collector; 0 without ``--telemetry``).

This module runs on the wall-clock side of the determinism fence: it
stamps stdout lines and the telemetry clock offset with ``time.time``.
The protocol stack underneath stays deterministic — wall time never
feeds scheduler or protocol decisions.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import sys
import time

from repro.core.config import RaincoreConfig
from repro.core.events import Delivery, SessionListener, ViewChange
from repro.core.session import RaincoreNode
from repro.runtime.scheduler import AsyncioScheduler
from repro.runtime.telemetry import TelemetryShipper
from repro.runtime.udp import UdpFabric

__all__ = ["main", "run_worker", "parse_peers", "build_parser", "STDOUT_SCHEMA"]

#: Version carried in the ``v`` field of every stdout line (see module
#: docstring for the line schema).
STDOUT_SCHEMA = 2

#: Seconds between telemetry ``mark`` heartbeats (collector watermark).
_MARK_INTERVAL = 0.25


def parse_peers(spec: str, node: str, port: int) -> dict[str, int]:
    """Parse ``--peers`` (``id=port,id=port,...``) and validate it.

    Raises ``ValueError`` on malformed pairs, bad or duplicate ports,
    duplicate ids, a missing ``node`` entry, or a ``port`` mismatch with
    the node's own entry.
    """
    ports: dict[str, int] = {}
    for pair in spec.split(","):
        pair = pair.strip()
        nid, sep, text = pair.partition("=")
        if not sep or not nid or not text:
            raise ValueError(f"--peers entry {pair!r} is not id=port")
        try:
            p = int(text)
        except ValueError:
            raise ValueError(f"--peers entry {pair!r} has a non-integer port") from None
        if not 1 <= p <= 65535:
            raise ValueError(f"--peers entry {pair!r} port out of range")
        if nid in ports:
            raise ValueError(f"--peers lists node {nid!r} twice")
        ports[nid] = p
    if len(set(ports.values())) != len(ports):
        raise ValueError("--peers assigns the same port to two nodes")
    if node not in ports:
        raise ValueError(f"--peers does not include this node ({node!r})")
    if ports[node] != port:
        raise ValueError(
            f"--port {port} does not match this node's --peers entry {ports[node]}"
        )
    return ports


def worker_seed(node: str) -> int:
    """Deterministic per-node scheduler seed (stable across processes)."""
    return int.from_bytes(hashlib.sha256(node.encode()).digest()[:4], "big")


class _JsonReporter(SessionListener):
    def __init__(self, node_id: str) -> None:
        self.node_id = node_id

    def _emit(self, event: str, **fields) -> None:
        line = {
            "v": STDOUT_SCHEMA,
            "ts": time.time(),
            "event": event,
            "node": self.node_id,
            **fields,
        }
        print(json.dumps(line, sort_keys=True), flush=True)

    def on_view_change(self, view: ViewChange) -> None:
        self._emit("view", members=list(view.members), view_id=view.view_id)

    def on_deliver(self, delivery: Delivery) -> None:
        payload = delivery.payload
        if isinstance(payload, bytes):
            payload = payload.decode("utf-8", "replace")
        self._emit(
            "deliver", origin=delivery.origin, msg_no=delivery.msg_no,
            payload=str(payload),
        )


class _Sidecar(asyncio.DatagramProtocol):
    """Connected UDP socket to the collector; relays pulls to the shipper."""

    def __init__(self) -> None:
        self.shipper: TelemetryShipper | None = None
        self.transport: asyncio.DatagramTransport | None = None

    def connection_made(self, transport) -> None:  # pragma: no cover - trivial
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        if self.shipper is not None:
            self.shipper.on_datagram(data)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-worker")
    parser.add_argument("--node", required=True, help="this node's id")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--peers",
        required=True,
        help="comma-separated id=port pairs for the whole cluster",
    )
    parser.add_argument(
        "--bootstrap",
        action="store_true",
        help="form a new group instead of joining",
    )
    parser.add_argument("--contact", default=None, help="join via this member")
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--hop-interval", type=float, default=0.02)
    parser.add_argument(
        "--multicast-at", type=float, default=None,
        help="seconds after start to multicast --payload",
    )
    parser.add_argument("--payload", default="hello-from-worker")
    parser.add_argument(
        "--telemetry", default=None, metavar="HOST:PORT",
        help="ship probe events to a raintap collector at this address",
    )
    parser.add_argument(
        "--ring-capacity", type=int, default=512,
        help="flight-recorder ring size per node (with --telemetry)",
    )
    return parser


async def run_worker(args) -> int:
    try:
        ports = parse_peers(args.peers, args.node, args.port)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    fabric = UdpFabric(ports)
    loop = asyncio.get_running_loop()
    scheduler = AsyncioScheduler(loop, seed=worker_seed(args.node))
    config = RaincoreConfig.tuned(ring_size=len(ports), hop_interval=args.hop_interval)
    reporter = _JsonReporter(args.node)
    node = RaincoreNode(args.node, scheduler, fabric, config, reporter)

    shipper: TelemetryShipper | None = None
    sidecar: asyncio.DatagramTransport | None = None
    if args.telemetry:
        host, sep, text = args.telemetry.rpartition(":")
        if not sep or not host:
            raise SystemExit(f"--telemetry {args.telemetry!r} is not HOST:PORT")
        try:
            tport = int(text)
        except ValueError:
            raise SystemExit(
                f"--telemetry {args.telemetry!r} has a non-integer port"
            ) from None
        from repro.obs import FlightRecorder, ProbeBus

        bus = ProbeBus(scheduler)
        recorder = FlightRecorder(bus, capacity=args.ring_capacity)
        protocol = _Sidecar()
        sidecar, _ = await loop.create_datagram_endpoint(
            lambda: protocol, remote_addr=(host, tport)
        )
        # One fixed offset maps the scheduler's monotonic clock onto the
        # epoch timeline every worker shares (see repro.runtime.telemetry).
        shipper = TelemetryShipper(
            args.node,
            sidecar.sendto,
            clock_offset=time.time() - scheduler.now,
            recorder=recorder,
        )
        protocol.shipper = shipper
        bus.subscribe(shipper.on_probe)
        fabric.probe = bus
        node.probe = bus
        node.transport.probe = bus

    await fabric.open(args.node)
    reporter._emit("started", port=args.port, telemetry=args.telemetry)
    if shipper is not None:
        shipper.hello(fabric.address_of(args.node))
    if args.bootstrap:
        node.start_new_group()
    else:
        contact = args.contact or next(n for n in ports if n != args.node)
        node.start_joining([contact])

    deadline = scheduler.now + args.duration
    multicast_at = (
        scheduler.now + args.multicast_at if args.multicast_at is not None else None
    )
    next_mark = scheduler.now
    try:
        while scheduler.now < deadline:
            await asyncio.sleep(0.02)
            if multicast_at is not None and scheduler.now >= multicast_at:
                multicast_at = None
                node.multicast(args.payload.encode())
            if shipper is not None and scheduler.now >= next_mark:
                next_mark = scheduler.now + _MARK_INTERVAL
                shipper.mark()

        reporter._emit(
            "done",
            members=list(node.members),
            state=node.state.value,
            packets_sent=fabric.stats.for_node(args.node).packets_sent,
            shipped=shipper.shipped if shipper is not None else 0,
        )
        return 0
    finally:
        node.crash()
        fabric.close_all()
        if shipper is not None:
            shipper.bye()
        if sidecar is not None:
            sidecar.close()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(run_worker(args))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
