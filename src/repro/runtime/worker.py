"""Standalone node worker: one Raincore node per OS process.

This is the final step of the runtime ladder — simulator → asyncio/UDP in
one process → **separate processes** with nothing shared but datagrams.
Each worker runs exactly one session node over real UDP and reports its
observations as JSON lines on stdout, so a parent (test, demo, or human
with a terminal per node) can watch the cluster form across process
boundaries.

Usage (normally spawned by ``examples/multiprocess_demo.py`` or the tests)::

    python -m repro.runtime.worker --node A --port 42000 \
        --peers A=42000,B=42001,C=42002 --bootstrap --duration 3 \
        --multicast-at 1.0 --payload hello

Protocol of the stdout stream: one JSON object per line with an ``event``
field (``started``, ``view``, ``deliver``, ``done``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.core.config import RaincoreConfig
from repro.core.events import Delivery, SessionListener, ViewChange
from repro.core.session import RaincoreNode
from repro.runtime.scheduler import AsyncioScheduler
from repro.runtime.udp import UdpFabric

__all__ = ["main", "run_worker"]


class _JsonReporter(SessionListener):
    def __init__(self, node_id: str) -> None:
        self.node_id = node_id

    def _emit(self, event: str, **fields) -> None:
        print(json.dumps({"event": event, "node": self.node_id, **fields}), flush=True)

    def on_view_change(self, view: ViewChange) -> None:
        self._emit("view", members=list(view.members), view_id=view.view_id)

    def on_deliver(self, delivery: Delivery) -> None:
        payload = delivery.payload
        if isinstance(payload, bytes):
            payload = payload.decode("utf-8", "replace")
        self._emit(
            "deliver", origin=delivery.origin, msg_no=delivery.msg_no,
            payload=str(payload),
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-worker")
    parser.add_argument("--node", required=True, help="this node's id")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--peers",
        required=True,
        help="comma-separated id=port pairs for the whole cluster",
    )
    parser.add_argument(
        "--bootstrap",
        action="store_true",
        help="form a new group instead of joining",
    )
    parser.add_argument("--contact", default=None, help="join via this member")
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--hop-interval", type=float, default=0.02)
    parser.add_argument(
        "--multicast-at", type=float, default=None,
        help="seconds after start to multicast --payload",
    )
    parser.add_argument("--payload", default="hello-from-worker")
    return parser


async def run_worker(args) -> int:
    ports = {}
    for pair in args.peers.split(","):
        nid, port = pair.split("=")
        ports[nid] = int(port)
    if args.node not in ports or ports[args.node] != args.port:
        raise SystemExit("--port must match this node's entry in --peers")

    fabric = UdpFabric(ports)
    scheduler = AsyncioScheduler(asyncio.get_event_loop(), seed=hash(args.node) & 0xFFFF)
    config = RaincoreConfig.tuned(ring_size=len(ports), hop_interval=args.hop_interval)
    reporter = _JsonReporter(args.node)
    node = RaincoreNode(args.node, scheduler, fabric, config, reporter)

    await fabric.open(args.node)
    reporter._emit("started", port=args.port)
    if args.bootstrap:
        node.start_new_group()
    else:
        contact = args.contact or next(n for n in ports if n != args.node)
        node.start_joining([contact])

    deadline = scheduler.now + args.duration
    multicast_at = (
        scheduler.now + args.multicast_at if args.multicast_at is not None else None
    )
    while scheduler.now < deadline:
        await asyncio.sleep(0.02)
        if multicast_at is not None and scheduler.now >= multicast_at:
            multicast_at = None
            node.multicast(args.payload.encode())

    reporter._emit(
        "done",
        members=list(node.members),
        state=node.state.value,
        packets_sent=fabric.stats.for_node(args.node).packets_sent,
    )
    node.crash()
    fabric.close_all()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(run_worker(args))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
