"""Real UDP datagram fabric for the asyncio runtime.

Implements the same interface the simulated
:class:`~repro.net.datagram.DatagramNetwork` exposes to the transport layer
— ``bind`` / ``unbind`` / ``send`` plus ``topology`` and ``stats`` — over
actual UDP sockets on localhost.  The paper's deployments used UDP on a
switched LAN (paper §2.1: "In typical implementations, it uses UDP"); this
fabric lets the unmodified protocol stack run on the real thing.

Wire format: a 5-byte prefix — the magic ``b"RCF"`` plus one version byte
(``0x01``) — followed by ``pickle.dumps((src_addr, dst_addr, size,
payload))``.  The declared modelled size travels with the packet, exactly
as the simulator's ``Datagram`` carries it, so receive-side accounting and
probes report the same size the sender declared.  The prefix is the
defensive layer: a datagram is only handed to ``pickle.loads`` after its
magic and version check out, so arbitrary bytes sprayed at the port are
counted and dropped (``bad-magic``) without ever reaching the
deserializer, and frames above ``max_frame_bytes`` are dropped outright
(``oversized``) on both the send and receive sides.  Pickle *after* the
prefix check is acceptable because the fabric is a loopback/demo transport
between cooperating processes you started yourself; a production port
would swap in an explicit codec (every message type already reports
``wire_size()``, so the sizes are modelled independently of the encoding).
The telemetry sidecar channel (:mod:`repro.runtime.telemetry`) shares the
prefix discipline but uses JSON bodies — no pickle at all.

Like the simulated network, the fabric carries an optional ``probe`` bus
(``None`` = observability off) and emits the same ``net.send`` /
``net.deliver`` / ``net.drop`` catalogue kinds with the same argument
shapes, so :mod:`repro.obs` consumers (aggregators, monitors, diff) work
unchanged over real sockets.  Real-fabric drop sites get their own
``where`` labels: ``no-endpoint`` (sender socket closed), ``unpicklable``,
``oversized`` (frame above the cap, either direction), ``bad-magic``
(wrong or missing prefix), ``garbage`` (valid prefix, undecodable body),
``misaddressed``, and ``unbound``.
"""

from __future__ import annotations

import asyncio
import pickle
from typing import Any

from repro.net.datagram import Datagram, PacketHandler
from repro.net.stats import StatsRegistry
from repro.net.topology import Segment, Topology

__all__ = ["UdpFabric", "FABRIC_MAGIC", "FABRIC_VERSION"]

#: Datagram prefix: 3 magic bytes + 1 version byte.  Anything that does
#: not start with this exact prefix is dropped before deserialization.
FABRIC_MAGIC = b"RCF"
FABRIC_VERSION = 1
_PREFIX = FABRIC_MAGIC + bytes([FABRIC_VERSION])


class _Endpoint(asyncio.DatagramProtocol):
    def __init__(self, fabric: "UdpFabric", address: str) -> None:
        self.fabric = fabric
        self.address = address
        self.transport: asyncio.DatagramTransport | None = None

    def connection_made(self, transport) -> None:  # pragma: no cover - trivial
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.fabric._on_datagram(self.address, data)


class UdpFabric:
    """UDP sockets on 127.0.0.1, one per node, behind the simulator's API.

    Parameters
    ----------
    ports:
        Mapping node id → UDP port.  Each node gets one NIC address of the
        form ``"127.0.0.1:<port>"`` on a single shared segment.
    max_frame_bytes:
        Cap on the encoded datagram size (prefix included).  Frames above
        it are dropped with ``where="oversized"`` on whichever side sees
        them first; the default stays under the classic 65507-byte UDP
        payload limit.
    """

    SEGMENT = "udp0"

    def __init__(self, ports: dict[str, int], *, max_frame_bytes: int = 65_000) -> None:
        if not ports:
            raise ValueError("need at least one node")
        if max_frame_bytes <= len(_PREFIX):
            raise ValueError("max_frame_bytes must exceed the frame prefix")
        self.ports = dict(ports)
        self.max_frame_bytes = max_frame_bytes
        self.topology = Topology()
        self.topology.add_segment(Segment(self.SEGMENT, latency=0.0, jitter=0.0))
        self.stats = StatsRegistry()
        # Optional probe bus (repro.obs): None means observability is off
        # and the hot path pays a single attribute load per packet.
        self.probe = None
        self._handlers: dict[str, PacketHandler] = {}
        self._endpoints: dict[str, asyncio.DatagramTransport] = {}
        for node_id, port in self.ports.items():
            self.topology.add_node(node_id)
            self.topology.attach(node_id, self._addr(port), self.SEGMENT)
        self.packets_delivered = 0
        self.packets_dropped = 0

    @staticmethod
    def _addr(port: int) -> str:
        return f"127.0.0.1:{port}"

    def address_of(self, node_id: str) -> str:
        return self._addr(self.ports[node_id])

    # ------------------------------------------------------------------
    # socket lifecycle
    # ------------------------------------------------------------------
    async def open(self, node_id: str) -> None:
        """Create the node's UDP endpoint (idempotent)."""
        addr = self.address_of(node_id)
        if addr in self._endpoints:
            return
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _Endpoint(self, addr),
            local_addr=("127.0.0.1", self.ports[node_id]),
        )
        self._endpoints[addr] = transport

    async def open_all(self) -> None:
        for node_id in self.ports:
            await self.open(node_id)

    def close(self, node_id: str) -> None:
        """Close the node's socket — the real-world 'crash'."""
        transport = self._endpoints.pop(self.address_of(node_id), None)
        if transport is not None:
            transport.close()

    def close_all(self) -> None:
        for node_id in list(self.ports):
            self.close(node_id)

    # ------------------------------------------------------------------
    # DatagramNetwork interface (consumed by ReliableUnicast)
    # ------------------------------------------------------------------
    def bind(self, address: str, handler: PacketHandler) -> None:
        self.topology.owner_of(address)  # KeyError on unknown address
        self._handlers[address] = handler

    def unbind(self, address: str) -> None:
        self._handlers.pop(address, None)

    def send(self, src: str, dst: str, payload: Any, size: int) -> None:
        sender = self.topology.owner_of(src)
        self.stats.for_node(sender).packet_sent(size)
        probe = self.probe
        frame = type(payload).__name__
        if probe is not None:
            probe.emit(sender, "net.send", src, dst, frame, size)
        endpoint = self._endpoints.get(src)
        if endpoint is None:
            self.packets_dropped += 1
            if probe is not None:
                probe.emit(
                    sender, "net.drop", src, dst, frame, size, "no-endpoint"
                )
            return
        host, port = dst.rsplit(":", 1)
        try:
            data = _PREFIX + pickle.dumps((src, dst, size, payload))
        except Exception:  # unpicklable payload: drop like a too-big datagram
            self.packets_dropped += 1
            if probe is not None:
                probe.emit(
                    sender, "net.drop", src, dst, frame, size, "unpicklable"
                )
            return
        if len(data) > self.max_frame_bytes:
            self.packets_dropped += 1
            if probe is not None:
                probe.emit(
                    sender, "net.drop", src, dst, frame, size, "oversized"
                )
            return
        endpoint.sendto(data, (host, int(port)))

    # ------------------------------------------------------------------
    def _on_datagram(self, local_addr: str, data: bytes) -> None:
        probe = self.probe
        receiver = self.topology.owner_of(local_addr)
        # Received bytes carry no trustworthy header fields until the
        # prefix checks out and the body decodes; drops before that point
        # report src/frame as "?" and the raw datagram length as size.
        if len(data) > self.max_frame_bytes:
            self.packets_dropped += 1
            if probe is not None:
                probe.emit(
                    receiver, "net.drop", "?", local_addr, "?", len(data),
                    "oversized",
                )
            return
        if not data.startswith(_PREFIX):
            self.packets_dropped += 1
            if probe is not None:
                probe.emit(
                    receiver, "net.drop", "?", local_addr, "?", len(data),
                    "bad-magic",
                )
            return
        try:
            src, dst, size, payload = pickle.loads(data[len(_PREFIX):])
        except Exception:
            self.packets_dropped += 1
            if probe is not None:
                probe.emit(
                    receiver, "net.drop", "?", local_addr, "?", len(data),
                    "garbage",
                )
            return
        frame = type(payload).__name__
        if dst != local_addr:
            self.packets_dropped += 1
            if probe is not None:
                probe.emit(
                    receiver, "net.drop", src, dst, frame, size, "misaddressed"
                )
            return
        handler = self._handlers.get(local_addr)
        if handler is None:
            self.packets_dropped += 1
            if probe is not None:
                probe.emit(
                    receiver, "net.drop", src, dst, frame, size, "unbound"
                )
            return
        self.stats.for_node(receiver).packet_received(size)
        self.packets_delivered += 1
        if probe is not None:
            probe.emit(receiver, "net.deliver", src, dst, frame, size)
        handler(Datagram(src, dst, payload, size))
