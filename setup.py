"""Legacy setup shim.

The environment has no ``wheel`` package, so pip cannot build the modern
PEP-660 editable wheel; this shim lets ``pip install -e .`` fall back to the
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
